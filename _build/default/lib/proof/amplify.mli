(** Error amplification by independent repetition.

    Definition 2 fixes the thresholds at 2/3 and 1/3, but applications
    usually want error [delta] for tiny [delta]. Running a protocol [t]
    times with independent coins and accepting iff at least [tau t] runs
    accept drives both errors down exponentially (Chernoff), at [t] times
    the communication.

    Repetitions here are sequential-independent executions of the full
    protocol (each with fresh Arthur coins and a fresh prover interaction);
    for the simulated provers in this repository each repetition is an
    independent Bernoulli trial, so the Chernoff accounting below is exact.
    (General parallel repetition of multi-prover or shared-state interactive
    proofs is subtler; nothing here relies on it.) *)

type t = {
  outcome : Outcome.t;  (** Aggregated verdict and summed costs. *)
  accepts : int;
  trials : int;
}

val repeat : trials:int -> threshold:int -> (int -> Outcome.t) -> t
(** [repeat ~trials ~threshold run] executes [run seed] for
    [seed = 1 .. trials] and accepts iff at least [threshold] runs accept.
    Costs are summed; the prover name is taken from the first run. *)

val majority : trials:int -> (int -> Outcome.t) -> t
(** [repeat] with [threshold = trials/2 + 1] — the right choice when the
    single-run gap straddles 1/2 (e.g. 2/3 vs 1/3). *)

val error_bound : single_rate:float -> trials:int -> threshold:int -> float
(** Hoeffding bound on the probability that [t] Bernoulli([single_rate])
    trials land on the wrong side of [threshold]:
    [exp (-2 t (|rate - threshold/t|)^2)]. Valid for either direction. *)

val trials_for : yes_rate:float -> no_rate:float -> delta:float -> int * int
(** [(t, tau)] sufficient to distinguish acceptance rates [yes_rate] >
    [no_rate] with both errors at most [delta], by the Hoeffding bound.
    @raise Invalid_argument if [yes_rate <= no_rate]. *)
