(** Result of one protocol execution. *)

type t = {
  accepted : bool;  (** Did all nodes accept? *)
  max_bits_per_node : int;
      (** The paper's length measure: the maximum over nodes of the bits that
          node exchanged with the prover (challenges plus responses). *)
  max_response_bits : int;  (** Response bits only (the lower-bound measure). *)
  total_bits : int;  (** Total communication over the whole network. *)
  prover : string;  (** Name of the prover strategy that was run. *)
}

val of_cost : accepted:bool -> prover:string -> Ids_network.Cost.t -> t

val pp : Format.formatter -> t -> unit
