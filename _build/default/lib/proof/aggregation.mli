(** Shared verification and prover-side helpers for the "hash up the
    spanning tree" pattern used by Protocols 1 and 2 and by the DSym and GNI
    protocols.

    The prover supplies per-node labels [(parent, dist)] plus a claimed root;
    each node runs the local checks of the Korman–Kutten–Peleg spanning-tree
    proof-labeling scheme, then verifies that its claimed subtree aggregate
    equals its own term plus its children's claimed aggregates. Lemma 3.3:
    if every node accepts, the root's aggregate is the true total. *)

val in_range : int -> int -> bool
(** [in_range n x] is [0 <= x < n]. *)

val tree_check : Ids_graph.Graph.t -> root:int -> parent:int array -> dist:int array -> int -> bool
(** The Line-1 checks at node [v]: the root has distance 0 and is its own
    parent; every other node has an adjacent parent whose distance is one
    less. All values are range-checked so adversarial labels cannot crash
    verification. *)

val children : Ids_graph.Graph.t -> parent:int array -> int -> int list
(** [C(v) = { u in N(v) | t_u = v }] over the open neighborhood of [v]. *)

val subtree_equation :
  'a Ids_hash.Field.t -> own:'a -> claimed:'a array -> children:int list -> int -> bool
(** The Line-3 check at node [v]:
    [claimed.(v) = own + sum_{u in children} claimed.(u)]. *)

val honest_sums : 'a Ids_hash.Field.t -> Ids_graph.Spanning_tree.t -> term:(int -> 'a) -> 'a array
(** Prover-side: for every [v], the true subtree aggregate
    [sum_{u in T_v} term u]. *)
