type t = {
  accepted : bool;
  max_bits_per_node : int;
  max_response_bits : int;
  total_bits : int;
  prover : string;
}

let of_cost ~accepted ~prover cost =
  { accepted;
    max_bits_per_node = Ids_network.Cost.max_per_node cost;
    max_response_bits = Ids_network.Cost.max_from_prover cost;
    total_bits = Ids_network.Cost.total cost;
    prover
  }

let pp fmt t =
  Format.fprintf fmt "%s: %s, %d bits/node (max), %d total"
    t.prover
    (if t.accepted then "ACCEPT" else "REJECT")
    t.max_bits_per_node t.total_bits
