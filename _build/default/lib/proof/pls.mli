(** "Distributed NP" baselines: proof labeling schemes / locally checkable
    proofs, the non-interactive model the paper's separations are measured
    against.

    A scheme assigns each node an advice string; nodes exchange advice with
    their neighbors, run a local check, and the proof is accepted iff all
    nodes accept. Three schemes are implemented:

    - {!Tree}: the [Theta(log n)] spanning-tree scheme of
      Korman–Kutten–Peleg, the building block the paper's protocols reuse;
    - {!Lcp_sym}: the [Theta(n^2)]-bit scheme for Sym — the full adjacency
      matrix plus a non-trivial automorphism at every node. Göös–Suomela
      prove a matching [Omega(n^2)] lower bound, which is what Protocol 1
      beats exponentially;
    - {!Lcp_gni}: the analogous [Theta(n^2)]-bit scheme for GNI (both
      adjacency matrices at every node; local verifiers are computationally
      unbounded, as in the model). *)

type verdict = { accepted : bool; advice_bits_per_node : int }

module Tree : sig
  type advice = { root : int; parent : int array; dist : int array }

  val honest : Ids_graph.Graph.t -> int -> advice
  (** [honest g root] is the correct labeling from a BFS tree. *)

  val verify : Ids_graph.Graph.t -> advice -> verdict
  (** Distributed verification: each node runs the local parent/distance
      checks against its neighbors' labels. Accepts iff the advice describes
      a spanning tree of [g] rooted at [advice.root]. *)

  val advice_bits : Ids_graph.Graph.t -> int
end

module Lcp_sym : sig
  type advice = { matrix : string array; rho : int array array }
  (** Per node: a copy of the (claimed) adjacency-matrix encoding and a copy
      of the (claimed) automorphism table. *)

  val honest : Ids_graph.Graph.t -> advice option
  (** [None] when the graph is asymmetric (no valid proof exists). *)

  val verify : Ids_graph.Graph.t -> advice -> verdict
  (** Each node checks: its copy equals its neighbors' copies, row [v] of
      the claimed matrix matches its actual neighborhood, the claimed [rho]
      is a non-identity automorphism of the claimed matrix. Sound and
      complete (deterministically) on connected graphs. *)

  val table_is_automorphism : int -> string -> int array -> bool
  (** [table_is_automorphism n enc table]: is [table] a non-identity
      automorphism of the matrix encoded in [enc]? Exposed for the
      randomized scheme ({!Rpls}), which reuses the exact local checks. *)

  val advice_bits : Ids_graph.Graph.t -> int
end

(** The introduction's contrast case: "some problems, such as checking
    bipartiteness, admit very short proofs [23]". One bit of advice per node
    certifies bipartiteness; an [O(log n)]-bit odd-cycle pointer certifies
    non-bipartiteness — both exponentially below the [Omega(n^2)] that Sym
    and GNI force, which is what makes interaction interesting for the
    latter. *)
module Lcp_bipartite : sig
  type advice = bool array
  (** One bit per node: its side of the claimed bipartition. *)

  val honest : Ids_graph.Graph.t -> advice option
  (** A 2-coloring by BFS on each component, or [None] if an odd cycle
      exists. *)

  val verify : Ids_graph.Graph.t -> advice -> verdict
  (** Each node checks that every neighbor carries the opposite bit.
      Deterministically sound and complete. *)

  val advice_bits : int
  (** 1. *)
end

module Lcp_odd_cycle : sig
  type advice = {
    tree : Tree.advice;  (** spanning-tree labels (root, parent, dist) *)
    witness : int * int;  (** an edge whose endpoints have equal parity *)
  }
  (** A non-bipartiteness witness in [Theta(log n)] bits per node: tree
      distances plus a pointer to one same-parity edge. The tree path
      between the endpoints plus that edge forms a closed odd walk, which
      contains an odd cycle. *)

  val honest : Ids_graph.Graph.t -> advice option
  (** BFS labels and a same-parity edge, or [None] when the graph is
      bipartite. Requires a connected graph. *)

  val verify : Ids_graph.Graph.t -> advice -> verdict
  (** All nodes run the spanning-tree checks; the witness endpoints
      additionally verify that the edge exists and their distances have
      equal parity. Deterministically sound and complete. *)

  val advice_bits : Ids_graph.Graph.t -> int
  (** [Theta(log n)]: the tree labels plus two vertex names. *)
end

module Lcp_gni : sig
  type advice = { m0 : string array; m1 : string array }

  val honest : Ids_graph.Graph.t -> Ids_graph.Graph.t -> advice option
  (** [honest g0 g1] is [None] when the graphs are isomorphic. *)

  val verify : Ids_graph.Graph.t -> Ids_graph.Graph.t -> advice -> verdict
  (** The network graph is [g0]; node [v]'s input is its row of [g1]. *)

  val advice_bits : Ids_graph.Graph.t -> int
end
