(** Acceptance-rate estimation over repeated protocol executions.

    Definition 2's correctness thresholds (2/3 for YES instances, 1/3 for NO
    instances) are probabilities over Arthur's coins; the experiments
    estimate them by running a protocol many times with fresh seeds. *)

type estimate = {
  trials : int;
  accepts : int;
  rate : float;
  mean_bits : float;  (** Mean over trials of the max-per-node bit cost. *)
  max_bits : int;  (** Maximum over trials of the same. *)
}

val acceptance : trials:int -> (int -> Outcome.t) -> estimate
(** [acceptance ~trials run] executes [run seed] for [seed = 1 .. trials]. *)

val pp : Format.formatter -> estimate -> unit
