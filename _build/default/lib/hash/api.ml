module Graph = Ids_graph.Graph

type 'a spec = { points : 'a array; coeffs : 'a array; shift : 'a }

let default_copies = 3

let random_spec f ~k rng =
  if k < 1 then invalid_arg "Api.random_spec: need k >= 1";
  { points = Array.init k (fun _ -> f.Field.random rng);
    coeffs = Array.init k (fun _ -> f.Field.random rng);
    shift = f.Field.random rng
  }

let spec_bits f ~k = ((2 * k) + 1) * f.Field.bits

let row_term f spec ~n ~row s = Array.map (fun a -> Linear.row_hash f a ~n ~row s) spec.points

let combine f x y =
  if Array.length x <> Array.length y then invalid_arg "Api.combine: arity mismatch";
  Array.mapi (fun i xi -> f.Field.add xi y.(i)) x

let zero_term f ~k = Array.make k f.Field.zero

let finalize f spec z =
  if Array.length z <> Array.length spec.coeffs then invalid_arg "Api.finalize: arity mismatch";
  let acc = ref spec.shift in
  Array.iteri (fun i zi -> acc := f.Field.add !acc (f.Field.mul spec.coeffs.(i) zi)) z;
  !acc

let hash_graph f spec g =
  let n = Graph.n g in
  let z = ref (zero_term f ~k:(Array.length spec.points)) in
  for v = 0 to n - 1 do
    z := combine f !z (row_term f spec ~n ~row:v (Graph.closed_neighborhood g v))
  done;
  finalize f spec !z

let epsilon _f ~n ~k ~q =
  let m = float_of_int ((n * n) + n) in
  q *. ((m /. q) ** float_of_int k)
