(** Distributed almost pairwise-independent hashing (Section 4).

    The Goldwasser–Sipser protocol needs a hash from n x n adjacency matrices
    into a range [\[q\]] with [q = Theta(n!)] such that for [x1 <> x2] and any
    targets [y1, y2]:

    + [Pr(h x1 = y1)  =  1 / q]                     (uniform marginals), and
    + [Pr(h x1 = y1 /\ h x2 = y2) <= (1 + eps) / q^2]   (eps-API).

    An exactly pairwise-independent family needs a seed as long as the input
    (Theta(n^2) field elements), which no node can afford; the conference
    paper relaxes to eps-API and defers its construction to the full version.
    We build a standard substitute with the same interface, cost and
    guarantees (documented in DESIGN.md):

    - an {b inner layer} of [k] independent copies of the Theorem 3.2 linear
      matrix hash, [z_i = h_{a_i}(x)], giving a vector [z in [q]^k]. Distinct
      matrices make all [k] coordinates collide with probability at most
      [((n^2 + n) / q)^k] (independent Schwartz–Zippel events). Each copy is
      a sum of per-row terms, so it aggregates up a spanning tree by field
      addition and every node can evaluate its own row's term locally;
    - an {b outer layer} [y = b + sum_i c_i z_i mod q] with uniform
      [(c_1..c_k, b)], which is exactly pairwise independent on distinct
      inner vectors and makes the marginal exactly uniform.

    The composition satisfies (1) exactly and (2) with
    [eps = q * ((n^2 + n) / q)^k]; with [q ~ 4 n!] and [k = 3] this is
    far below 1 for every [n >= 6], which is what the acceptance-gap
    calculation of the GNI protocol needs (see {!Ids_proof.Gni}). *)

type 'a spec = {
  points : 'a array;  (** Inner evaluation points [a_1 .. a_k]. *)
  coeffs : 'a array;  (** Outer coefficients [c_1 .. c_k]. *)
  shift : 'a;  (** Outer additive term [b]. *)
}

val default_copies : int
(** The [k] used by the GNI protocol (3). *)

val random_spec : 'a Field.t -> k:int -> Ids_bignum.Rng.t -> 'a spec

val spec_bits : 'a Field.t -> k:int -> int
(** Bits to transmit a spec: [(2k + 1)] field elements. *)

val row_term : 'a Field.t -> 'a spec -> n:int -> row:int -> Ids_graph.Bitset.t -> 'a array
(** The inner-layer contribution of one matrix row: the vector
    [(h_{a_i}(\[row, s\]))_i]. This is what a single network node computes
    locally for the row it owns. *)

val combine : 'a Field.t -> 'a array -> 'a array -> 'a array
(** Pointwise field addition: the spanning-tree aggregation step. *)

val zero_term : 'a Field.t -> k:int -> 'a array

val finalize : 'a Field.t -> 'a spec -> 'a array -> 'a
(** Apply the outer layer to a fully aggregated inner vector. *)

val hash_graph : 'a Field.t -> 'a spec -> Ids_graph.Graph.t -> 'a
(** Ground truth: the hash of a graph's full adjacency matrix (closed
    neighborhoods), computed centrally. Provers use this to search for
    preimages; tests use it to validate the distributed aggregation. *)

val epsilon : 'a Field.t -> n:int -> k:int -> q:float -> float
(** The analytical [eps] bound [q ((n^2+n)/q)^k] for the given parameters. *)
