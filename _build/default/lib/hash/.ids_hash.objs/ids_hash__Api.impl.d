lib/hash/api.ml: Array Field Ids_graph Linear
