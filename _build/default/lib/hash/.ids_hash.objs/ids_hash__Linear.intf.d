lib/hash/linear.mli: Field Ids_graph
