lib/hash/field.mli: Ids_bignum
