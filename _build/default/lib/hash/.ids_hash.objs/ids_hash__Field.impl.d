lib/hash/field.ml: Ids_bignum Int
