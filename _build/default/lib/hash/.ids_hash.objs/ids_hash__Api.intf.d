lib/hash/api.mli: Field Ids_bignum Ids_graph
