lib/hash/linear.ml: Array Field Ids_graph List
