(* Color refinement: start from degrees, then repeatedly replace each vertex
   color by a canonical index for (color, sorted multiset of neighbor colors)
   until the partition stabilizes. *)
let refine_colors g =
  let n = Graph.n g in
  let colors = Array.init n (fun v -> Graph.degree g v) in
  let stable = ref false in
  let rounds = ref 0 in
  while (not !stable) && !rounds < n do
    incr rounds;
    let signature v =
      let neigh = Bitset.fold (fun u acc -> colors.(u) :: acc) (Graph.neighbors g v) [] in
      (colors.(v), List.sort Stdlib.compare neigh)
    in
    (* Name the new colors by the rank of their signature in sorted order,
       so the naming is label-invariant and comparable across graphs. *)
    let sigs = Array.init n signature in
    let distinct = List.sort_uniq Stdlib.compare (Array.to_list sigs) in
    let rank =
      let table = Hashtbl.create 16 in
      List.iteri (fun i s -> Hashtbl.add table s i) distinct;
      fun s -> Hashtbl.find table s
    in
    let next = Array.map rank sigs in
    let count_classes a = List.length (List.sort_uniq Stdlib.compare (Array.to_list a)) in
    if count_classes next = count_classes colors then stable := true;
    Array.blit next 0 colors 0 n
  done;
  colors

let is_automorphism g rho =
  let n = Graph.n g in
  Perm.size rho = n
  &&
  let ok = ref true in
  List.iter
    (fun (u, v) -> if not (Graph.has_edge g (Perm.apply rho u) (Perm.apply rho v)) then ok := false)
    (Graph.edges g);
  (* A permutation preserves the edge count, so mapping every edge to an edge
     suffices for the "iff" of Definition 3. *)
  !ok

let is_isomorphism g1 g2 rho =
  Graph.n g1 = Graph.n g2
  && Perm.size rho = Graph.n g1
  && Graph.edge_count g1 = Graph.edge_count g2
  &&
  let ok = ref true in
  List.iter
    (fun (u, v) -> if not (Graph.has_edge g2 (Perm.apply rho u) (Perm.apply rho v)) then ok := false)
    (Graph.edges g1);
  !ok

(* Backtracking completion of a partial vertex map from g1 to g2. [image] has
   -1 for unmapped vertices; [used] marks taken targets. Candidate targets
   must match refined colors and be adjacency-consistent with every already
   mapped vertex. *)
let complete_mapping g1 g2 colors1 colors2 image used =
  let n = Graph.n g1 in
  let consistent u w =
    let ok = ref true in
    for x = 0 to n - 1 do
      if !ok && image.(x) >= 0 then
        if Graph.has_edge g1 u x <> Graph.has_edge g2 w image.(x) then ok := false
    done;
    !ok
  in
  let rec next_unmapped v = if v >= n then -1 else if image.(v) < 0 then v else next_unmapped (v + 1) in
  let rec go () =
    let u = next_unmapped 0 in
    if u < 0 then true
    else begin
      let rec try_target w =
        if w >= n then false
        else if (not used.(w)) && colors1.(u) = colors2.(w) && consistent u w then begin
          image.(u) <- w;
          used.(w) <- true;
          if go () then true
          else begin
            image.(u) <- -1;
            used.(w) <- false;
            try_target (w + 1)
          end
        end
        else try_target (w + 1)
      in
      try_target 0
    end
  in
  go ()

let sorted_counts colors = List.sort Stdlib.compare (Array.to_list colors)

let find_isomorphism g1 g2 =
  let n1 = Graph.n g1 and n2 = Graph.n g2 in
  if n1 <> n2 || Graph.edge_count g1 <> Graph.edge_count g2 then None
  else begin
    let colors1 = refine_colors g1 and colors2 = refine_colors g2 in
    (* Refinement is canonical, so the color histograms must agree. *)
    if sorted_counts colors1 <> sorted_counts colors2 then None
    else begin
      let image = Array.make n1 (-1) and used = Array.make n1 false in
      if complete_mapping g1 g2 colors1 colors2 image used then Some (Perm.of_array image) else None
    end
  end

let are_isomorphic g1 g2 = Option.is_some (find_isomorphism g1 g2)

let find_nontrivial_automorphism g =
  let n = Graph.n g in
  let colors = refine_colors g in
  (* Any non-trivial automorphism maps some vertex v to a w <> v; anchoring
     that first move and completing the map covers all of them. We anchor the
     smallest moved vertex, which additionally forces image x = x ... is not
     sound in general, so we only anchor the single pair. *)
  let rec try_pairs v w =
    if v >= n then None
    else if w >= n then try_pairs (v + 1) 0
    else if w = v || colors.(v) <> colors.(w) then try_pairs v (w + 1)
    else begin
      let image = Array.make n (-1) and used = Array.make n false in
      image.(v) <- w;
      used.(w) <- true;
      if Graph.degree g v = Graph.degree g w && complete_mapping g g colors colors image used then
        Some (Perm.of_array image)
      else try_pairs v (w + 1)
    end
  in
  match try_pairs 0 0 with
  | Some rho ->
    assert (is_automorphism g rho && not (Perm.is_identity rho));
    Some rho
  | None -> None

let is_symmetric g = Option.is_some (find_nontrivial_automorphism g)

let is_asymmetric g = not (is_symmetric g)

let orbits g =
  let n = Graph.n g in
  let colors = refine_colors g in
  (* Union-find over vertices; v and w share an orbit iff some automorphism
     maps v to w, decided by an anchored completion search. *)
  let parent = Array.init n Fun.id in
  let rec find v = if parent.(v) = v then v else find parent.(v) in
  let union v w = parent.(find v) <- find w in
  let mapped v w =
    colors.(v) = colors.(w)
    && Graph.degree g v = Graph.degree g w
    &&
    let image = Array.make n (-1) and used = Array.make n false in
    image.(v) <- w;
    used.(w) <- true;
    complete_mapping g g colors colors image used
  in
  for v = 0 to n - 1 do
    for w = v + 1 to n - 1 do
      if find v <> find w && mapped v w then union v w
    done
  done;
  let buckets = Hashtbl.create 16 in
  for v = n - 1 downto 0 do
    let r = find v in
    Hashtbl.replace buckets r (v :: Option.value (Hashtbl.find_opt buckets r) ~default:[])
  done;
  let smallest = function [] -> max_int | v :: _ -> v in
  Hashtbl.fold (fun _ vs acc -> vs :: acc) buckets []
  |> List.sort (fun a b -> Stdlib.compare (smallest a) (smallest b))

let automorphism_count g =
  let n = Graph.n g in
  if n > 10 then invalid_arg "Iso.automorphism_count: too large";
  List.length (List.filter (fun p -> is_automorphism g p) (Perm.all n))

let canonical_small g =
  let n = Graph.n g in
  if n > 10 then invalid_arg "Iso.canonical_small: too large";
  List.fold_left
    (fun best p ->
      let enc = Graph.encode (Graph.relabel g (Perm.to_array p)) in
      if enc < best then enc else best)
    (Graph.encode g) (Perm.all n)
