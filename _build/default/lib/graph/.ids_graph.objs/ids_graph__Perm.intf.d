lib/graph/perm.mli: Bitset Format Ids_bignum
