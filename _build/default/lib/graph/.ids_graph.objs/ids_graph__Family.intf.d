lib/graph/family.mli: Graph Ids_bignum Perm
