lib/graph/iso.mli: Graph Perm
