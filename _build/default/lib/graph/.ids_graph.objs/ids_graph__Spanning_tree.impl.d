lib/graph/spanning_tree.ml: Array Bitset Graph List Queue Stdlib
