lib/graph/graph.mli: Bitset Format Ids_bignum
