lib/graph/family.ml: Array Graph Ids_bignum Iso List Perm
