lib/graph/iso.ml: Array Bitset Fun Graph Hashtbl List Option Perm Stdlib
