lib/graph/perm.ml: Array Bitset Format Fun Ids_bignum List String
