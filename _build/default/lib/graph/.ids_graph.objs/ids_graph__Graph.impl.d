lib/graph/graph.ml: Array Bitset Buffer Format Fun Ids_bignum Int List Set String
