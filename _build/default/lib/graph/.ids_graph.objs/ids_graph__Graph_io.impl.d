lib/graph/graph_io.ml: Buffer Char Graph List Printf String
