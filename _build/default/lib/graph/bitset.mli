(** Fixed-capacity bit sets over [0 .. capacity-1].

    Adjacency rows of graphs are bit sets, and the hash protocols treat a
    row as the characteristic vector of a neighborhood, so membership,
    iteration and equality must all be cheap. *)

type t

val create : int -> t
(** [create capacity] is the empty set over [0 .. capacity-1]. *)

val capacity : t -> int

val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit

val cardinal : t -> int

val equal : t -> t -> bool
(** Equality of contents; requires equal capacities. *)

val copy : t -> t
val clear : t -> unit

val iter : (int -> unit) -> t -> unit
(** Iterates members in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Folds over members in increasing order. *)

val to_list : t -> int list
(** Members in increasing order. *)

val of_list : int -> int list -> t
(** [of_list capacity xs]. @raise Invalid_argument on out-of-range element. *)

val union : t -> t -> t
val inter : t -> t -> t
val subset : t -> t -> bool
val is_empty : t -> bool

val choose : t -> int option
(** Smallest member, or [None] if empty. *)

val pp : Format.formatter -> t -> unit
