(** Graph interchange: the standard graph6 format and Graphviz export.

    graph6 is the compact ASCII encoding used by nauty, geng and the
    House of Graphs, so instances can be imported from, and exported to,
    the standard corpora of small graphs (e.g. the known lists of
    asymmetric graphs used to sanity-check the Section 3.4 family). Only
    the short form (n <= 62) and the 4-byte form (n <= 258047) are
    implemented — far beyond anything the protocols run on. *)

val to_graph6 : Graph.t -> string
(** Encode; no header ([>>graph6<<] prefixes are not emitted). *)

val of_graph6 : string -> Graph.t
(** Decode. Accepts an optional [>>graph6<<] header and surrounding
    whitespace. @raise Invalid_argument on malformed input. *)

val to_dot : ?name:string -> Graph.t -> string
(** Graphviz [graph { ... }] source for visual inspection. *)
