(* graph6: n encoded in 1 or 4 bytes (printable ASCII, value + 63), followed
   by the upper triangle of the adjacency matrix in column-major order
   (x_{0,1}, x_{0,2}, x_{1,2}, x_{0,3}, ...), packed 6 bits per byte, padded
   with zeros. *)

let encode_size buf n =
  if n <= 62 then Buffer.add_char buf (Char.chr (n + 63))
  else if n <= 258047 then begin
    Buffer.add_char buf '~';
    Buffer.add_char buf (Char.chr (((n lsr 12) land 63) + 63));
    Buffer.add_char buf (Char.chr (((n lsr 6) land 63) + 63));
    Buffer.add_char buf (Char.chr ((n land 63) + 63))
  end
  else invalid_arg "Graph_io: graph too large for graph6"

let to_graph6 g =
  let n = Graph.n g in
  let buf = Buffer.create (4 + (n * n / 12)) in
  encode_size buf n;
  let bits = ref 0 and count = ref 0 in
  let flush_partial () =
    if !count > 0 then begin
      Buffer.add_char buf (Char.chr ((!bits lsl (6 - !count)) + 63));
      bits := 0;
      count := 0
    end
  in
  let push b =
    bits := (!bits lsl 1) lor (if b then 1 else 0);
    incr count;
    if !count = 6 then begin
      Buffer.add_char buf (Char.chr (!bits + 63));
      bits := 0;
      count := 0
    end
  in
  for v = 1 to n - 1 do
    for u = 0 to v - 1 do
      push (Graph.has_edge g u v)
    done
  done;
  flush_partial ();
  Buffer.contents buf

let of_graph6 s =
  let s = String.trim s in
  let s =
    let header = ">>graph6<<" in
    if String.length s >= String.length header && String.sub s 0 (String.length header) = header then
      String.sub s (String.length header) (String.length s - String.length header)
    else s
  in
  if s = "" then invalid_arg "Graph_io.of_graph6: empty";
  let byte i =
    if i >= String.length s then invalid_arg "Graph_io.of_graph6: truncated";
    let c = Char.code s.[i] in
    if c < 63 || c > 126 then invalid_arg "Graph_io.of_graph6: invalid byte";
    c - 63
  in
  let n, start =
    if s.[0] = '~' then begin
      if String.length s >= 2 && s.[1] = '~' then invalid_arg "Graph_io.of_graph6: 8-byte sizes unsupported"
      else (((byte 1) lsl 12) lor ((byte 2) lsl 6) lor byte 3, 4)
    end
    else (byte 0, 1)
  in
  let g = Graph.make n in
  let need = n * (n - 1) / 2 in
  let expected_bytes = start + ((need + 5) / 6) in
  if String.length s <> expected_bytes then invalid_arg "Graph_io.of_graph6: wrong length";
  let idx = ref 0 in
  (try
     for v = 1 to n - 1 do
       for u = 0 to v - 1 do
         let word = byte (start + (!idx / 6)) in
         let bit = (word lsr (5 - (!idx mod 6))) land 1 in
         if bit = 1 then Graph.add_edge g u v;
         incr idx
       done
     done
   with Invalid_argument _ -> invalid_arg "Graph_io.of_graph6: truncated");
  g

let to_dot ?(name = "g") g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" name);
  for v = 0 to Graph.n g - 1 do
    Buffer.add_string buf (Printf.sprintf "  %d;\n" v)
  done;
  List.iter (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v)) (Graph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
