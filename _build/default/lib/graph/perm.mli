(** Permutations of [{0, ..., n-1}].

    Automorphisms (Definition 3) and the isomorphisms of the GNI problem
    (Definition 4) are permutations; Protocol 2 broadcasts one in full, and
    the Goldwasser–Sipser prover responds with one. Represented as an array
    [sigma] with [sigma.(i)] the image of [i]. *)

type t = private int array

val of_array : int array -> t
(** Validates that the array is a permutation.
    @raise Invalid_argument otherwise. *)

val to_array : t -> int array
(** A fresh copy; mutating it does not affect the permutation. *)

val size : t -> int

val apply : t -> int -> int

val identity : int -> t
val is_identity : t -> bool

val compose : t -> t -> t
(** [compose a b] maps [i] to [a (b i)]. *)

val inverse : t -> t

val equal : t -> t -> bool

val transposition : int -> int -> int -> t
(** [transposition n i j] swaps [i] and [j] and fixes everything else. *)

val random : Ids_bignum.Rng.t -> int -> t
(** Uniformly random permutation (Fisher–Yates). *)

val random_nonidentity : Ids_bignum.Rng.t -> int -> t
(** Uniform over non-identity permutations; requires [n >= 2]. *)

val apply_set : t -> Bitset.t -> Bitset.t
(** Image of a set: [rho(S) = { rho s | s in S }] (Section 3.1.1). *)

val all : int -> t list
(** All [n!] permutations, for small [n] (intended for [n <= 8]).
    @raise Invalid_argument if [n > 10]. *)

val fixpoint_count : t -> int

val pp : Format.formatter -> t -> unit
