type t = { root : int; parent : int array; dist : int array }

let bfs g root =
  let n = Graph.n g in
  if root < 0 || root >= n then invalid_arg "Spanning_tree.bfs: root out of range";
  let parent = Array.make n (-1) and dist = Array.make n (-1) in
  parent.(root) <- root;
  dist.(root) <- 0;
  let queue = Queue.create () in
  Queue.add root queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Bitset.iter
      (fun u ->
        if dist.(u) < 0 then begin
          dist.(u) <- dist.(v) + 1;
          parent.(u) <- v;
          Queue.add u queue
        end)
      (Graph.neighbors g v)
  done;
  if Array.exists (fun d -> d < 0) dist then invalid_arg "Spanning_tree.bfs: graph not connected";
  { root; parent; dist }

let children t v =
  let acc = ref [] in
  for u = Array.length t.parent - 1 downto 0 do
    if u <> t.root && t.parent.(u) = v then acc := u :: !acc
  done;
  !acc

let subtree t v =
  let rec collect v = v :: List.concat_map collect (children t v) in
  List.sort Stdlib.compare (collect v)

let is_valid g t =
  let n = Graph.n g in
  Array.length t.parent = n
  && Array.length t.dist = n
  && t.root >= 0
  && t.root < n
  && t.dist.(t.root) = 0
  && t.parent.(t.root) = t.root
  &&
  let ok = ref true in
  for v = 0 to n - 1 do
    if v <> t.root then
      if not (Graph.has_edge g v t.parent.(v)) || t.dist.(v) <> t.dist.(t.parent.(v)) + 1 then ok := false
  done;
  !ok && List.length (subtree t t.root) = n
