(** Exact automorphism and isomorphism testing.

    Ground truth for every experiment: the Symmetry language (Definition 3)
    is decided by {!find_nontrivial_automorphism}, GNI (Definition 4) by
    {!find_isomorphism}, and the lower-bound family of Section 3.4 needs
    {!is_asymmetric} plus pairwise non-isomorphism. The search is
    backtracking over a 1-dimensional Weisfeiler–Leman color refinement,
    exact for the graph sizes used here (tens of vertices). *)

val refine_colors : Graph.t -> int array
(** Stable coloring of the vertices under iterated neighborhood refinement:
    vertices that end up with distinct colors lie in distinct orbits of the
    automorphism group (the converse need not hold). *)

val is_automorphism : Graph.t -> Perm.t -> bool
(** [is_automorphism g rho] checks the defining property of Definition 3:
    [{u, v}] is an edge iff [{rho u, rho v}] is. *)

val is_isomorphism : Graph.t -> Graph.t -> Perm.t -> bool

val find_isomorphism : Graph.t -> Graph.t -> Perm.t option
(** An isomorphism from the first graph to the second, if one exists. *)

val are_isomorphic : Graph.t -> Graph.t -> bool

val find_nontrivial_automorphism : Graph.t -> Perm.t option
(** A non-trivial automorphism if the graph is symmetric, [None] if it is
    asymmetric. This is the honest Merlin of Protocols 1 and 2. *)

val is_symmetric : Graph.t -> bool
(** Membership in the language Sym. *)

val is_asymmetric : Graph.t -> bool

val automorphism_count : Graph.t -> int
(** Order of the automorphism group, by exhaustive enumeration; intended for
    [n <= 8] (used to validate the [|S| = n!] vs [2 n!] counting in the
    Goldwasser–Sipser analysis). @raise Invalid_argument if [n > 10]. *)

val orbits : Graph.t -> int list list
(** The vertex orbits of the automorphism group, exactly (by anchored
    backtracking searches), sorted by smallest member. A graph is asymmetric
    iff every orbit is a singleton. Intended for the same moderate sizes as
    the rest of this module. *)

val canonical_small : Graph.t -> string
(** Canonical form for [n <= 8]: lexicographically smallest {!Graph.encode}
    over all relabellings. Two small graphs are isomorphic iff their
    canonical forms are equal. @raise Invalid_argument if [n > 10]. *)
