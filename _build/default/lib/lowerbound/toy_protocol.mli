(** An executable rendering of the Section 3.4 framework on toy instances.

    Theorem 1.4's proof manipulates three objects, all of which this module
    computes exactly for small parameters:

    - the response sets [M_A(F, r)]: messages to bridge node [x_A] that
      extend to responses making the whole A side accept (and symmetrically
      [M_B]);
    - the distributions [mu_A(F)] of [M_A(F, r)] over the challenge, and
      their pairwise L1 distances (Lemma 3.11 says a correct protocol keeps
      them >= 2/3 apart);
    - Lemma 3.9's identity: the best prover's acceptance probability on
      [G(F_A, F_B)] equals [Pr_r(M_A(F_A,r) cap M_B(F_B,r) <> {})].

    The concrete protocol is the {e fingerprint protocol} [Pi_L] over a
    fixed family [F] of connected asymmetric side graphs: the prover
    unicasts to every node an [L]-bit fingerprint [m] (honestly, the index
    of the side graph in [F], truncated to [L] bits); every side node checks
    that its own row in the dumbbell of [family\[m\]] matches its actual
    neighborhood and that its neighbors received the same [m]; bridge nodes
    check only the equality of their responses — so [Pi_L] is already a
    simple protocol in the sense of Definition 6. [Pi_L] decides Sym on the
    dumbbell family iff [L]-bit fingerprints separate the family, which
    makes the packing phenomenon visible: below [log2 |F|] bits there {e
    must} be a colliding pair, the two distributions coincide, and a
    cheating prover breaks soundness on the mixed dumbbell — exactly the
    argument of Theorem 1.4. *)

type t = private {
  family : Ids_graph.Graph.t array;  (** connected asymmetric side graphs *)
  side : int;  (** vertices per side *)
  length : int;  (** response length [L] in bits *)
}

val make : Ids_graph.Graph.t array -> length:int -> t
(** @raise Invalid_argument if the family is empty, sides differ in size,
    or [length] exceeds 20 bits (response sets are enumerated). *)

val fingerprint : t -> int -> int
(** [fingerprint t i]: the honest [L]-bit fingerprint of family member [i]
    (its index truncated to [L] bits). *)

val m_a : t -> int -> int list
(** [m_a t i]: the response set [M_A(family(i), r)] by exhaustive
    enumeration over messages [m in \[2^L\]] (extensions to the connected A
    side are forced to be constant by the neighbor-equality checks, so the
    enumeration is exact). For the fingerprint protocol the set is
    challenge-independent; the challenge argument is therefore omitted. *)

val m_b : t -> int -> int list

val mu_a : t -> int -> int list Dist.t
(** The distribution of [M_A(F, r)] over the challenge (a point mass here,
    computed through the same code path as the general definition). *)

val pairwise_l1 : t -> float array array
(** [pairwise_l1 t] gives [||mu_A(F_i) - mu_A(F_j)||_1] for all pairs. *)

val acceptance : t -> int -> int -> float
(** Lemma 3.9's right-hand side for the dumbbell [G(F_i, F_j)]:
    [Pr_r(M_A(F_i, r) cap M_B(F_j, r) <> {})] — the optimal prover's
    acceptance probability. *)

val correct : t -> bool
(** Definition 2 for the dumbbell family: acceptance > 2/3 on every
    [G(F,F)] and < 1/3 on every [G(F_i, F_j)], [i <> j]. For this
    (deterministic) protocol that means acceptance 1 and 0 respectively. *)

val colliding_pair : t -> (int * int) option
(** A pair of distinct family members with equal fingerprints — the
    pigeonhole witness that exists whenever [2^L < |F|]. *)

val min_correct_length : Ids_graph.Graph.t array -> int
(** The smallest [L] making the fingerprint protocol correct for the given
    family ([ceil log2 |F|] — compare with {!Packing.min_protocol_length},
    the information-theoretic floor any protocol must obey). *)

(** {1 Lemma 3.7: the simple-protocol transformation} *)

val simple_length : t -> int
(** The length of the transformed protocol: [4 L]. *)

val simple_bridge_response : t -> int -> int
(** The combined 4L-bit response Lemma 3.7's prover gives both bridge nodes
    on [G(F, F)]: the concatenation of the responses to
    [v_A, x_A, x_B, v_B]. *)

val simple_agrees : t -> bool
(** Checks Lemma 3.7's conclusion on the whole family: the transformed
    protocol accepts [G(F_i, F_j)] iff the original does. *)
