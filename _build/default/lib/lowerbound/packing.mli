(** The packing argument of Section 3.4 (Lemma 3.12 and Theorem 1.4).

    A correct simple protocol of length [L] induces, for each side graph
    [F], a distribution over subsets of [{0,1}^L] — a vector in [\[0,1\]^d]
    with [d = 2^(2^L)]. Lemma 3.11 forces any two of them to be at L1
    distance at least 2/3, Lemma 3.12 shows at most [5^d] such vectors fit,
    and the family has [2^(Omega(n^2))] members, so
    [L = Omega(log log n)].

    Everything here is computed in log space (base 2), so the astronomically
    large quantities involved ([5^(2^(2^L))], [2^(n^2)]) stay representable. *)

val log2_ball_volume : d:int -> r:float -> float
(** [log2] of the L1-ball volume [(4r)^d / (d+1)!]. *)

val log2_packing_bound : d:int -> float
(** [log2] of Lemma 3.12's bound [5^d] on the number of pairwise
    1/2-separated distributions over a domain of size [d]. *)

val packing_bound_exact : d:int -> Ids_bignum.Nat.t
(** The exact value [5^d], for moderate [d]. *)

val log2_family_size : int -> float
(** A lower bound on [log2 |F(n)|] for the family of asymmetric, pairwise
    non-isomorphic graphs on [n] vertices: [n^2/2 - n log2 n - O(n)]
    (a [1/2] because there are [2^(n(n-1)/2)] labelled graphs; almost all
    are asymmetric for large [n], and dividing by [n!] merges isomorphism
    classes). Returns 0 when the estimate is vacuous (tiny [n]). *)

val domain_log2 : length:int -> float
(** [log2 d] for a protocol of length [L]: [d = 2^(2^L)], so this is
    [2^L]. *)

val min_protocol_length : int -> int
(** [min_protocol_length n]: the smallest [L] such that [5^(2^(2^L))] is at
    least the family size — the Theorem 1.4 lower bound
    [L >= log2 log2 (log2 |F(n)| / log2 5)], rounded up, at least 1. *)

val lower_bound_table : int list -> (int * float * int) list
(** For each [n]: [(n, log2 |F(n)|, min_protocol_length n)] — the data
    behind the [Omega(log log n)] curve. *)
