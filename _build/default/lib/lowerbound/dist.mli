(** Finite distributions and L1 distance.

    Section 3.4 associates with every side-graph [F] a distribution
    [mu_A(F)] over {e sets} of prover responses; correctness forces these
    distributions to be pairwise far apart in L1 (Lemma 3.11), and L1-far
    distributions cannot be packed densely (Lemma 3.12). Supports are
    arbitrary comparable values, so a support point can itself be a set of
    responses. *)

type 'a t
(** A probability distribution with finite support. *)

val of_samples : 'a list -> 'a t
(** Empirical distribution of a non-empty sample list. *)

val of_assoc : ('a * float) list -> 'a t
(** @raise Invalid_argument if weights are negative or do not sum to ~1. *)

val support : 'a t -> 'a list
val prob : 'a t -> 'a -> float

val l1_distance : 'a t -> 'a t -> float
(** [sum_x |mu(x) - eta(x)|] over the union of supports. Between 0 and 2. *)

val total_variation : 'a t -> 'a t -> float
(** Half the L1 distance. *)

val event_gap_lower_bound : 'a t -> 'a t -> ('a -> bool) -> float
(** [2 |mu(Q) - eta(Q)|] for the event [Q] — the lower bound on L1 used in
    the proof of Lemma 3.11. *)
