lib/lowerbound/packing.mli: Ids_bignum
