lib/lowerbound/toy_protocol.ml: Array Dist Fun Ids_graph List
