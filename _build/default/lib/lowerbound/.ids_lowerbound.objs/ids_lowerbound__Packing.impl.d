lib/lowerbound/packing.ml: Float Ids_bignum List
