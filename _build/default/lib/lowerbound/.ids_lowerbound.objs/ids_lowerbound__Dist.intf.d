lib/lowerbound/dist.mli:
