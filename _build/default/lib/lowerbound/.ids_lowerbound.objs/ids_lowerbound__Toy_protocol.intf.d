lib/lowerbound/toy_protocol.mli: Dist Ids_graph
