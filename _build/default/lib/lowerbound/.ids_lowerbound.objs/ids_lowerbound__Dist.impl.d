lib/lowerbound/dist.ml: Float Hashtbl List Option Stdlib
