module Graph = Ids_graph.Graph
module Family = Ids_graph.Family
module Iso = Ids_graph.Iso

type t = { family : Graph.t array; side : int; length : int }

let make family ~length =
  if Array.length family = 0 then invalid_arg "Toy_protocol.make: empty family";
  let side = Graph.n family.(0) in
  Array.iter
    (fun f ->
      if Graph.n f <> side then invalid_arg "Toy_protocol.make: side size mismatch";
      if not (Graph.is_connected f) then invalid_arg "Toy_protocol.make: sides must be connected")
    family;
  if length < 1 || length > 20 then invalid_arg "Toy_protocol.make: length out of enumerable range";
  { family; side; length }

let fingerprint t i = i land ((1 lsl t.length) - 1)

(* Does message [m], decoded as a family index, describe side [F_i] exactly?
   Each side node checks only its own row of the decoded graph, but the
   conjunction over the (connected) side checks the whole graph, which is
   what the exists-an-extension definition of M_A evaluates to here: the
   neighbor-equality checks force any accepting extension to be constant. *)
let side_matches t i m =
  let candidates =
    (* All family members whose truncated index is m. *)
    List.filter (fun j -> fingerprint t j = m) (List.init (Array.length t.family) Fun.id)
  in
  List.exists (fun j -> Graph.equal t.family.(j) t.family.(i)) candidates

let enumerate_messages t pred = List.filter pred (List.init (1 lsl t.length) Fun.id)

let m_a t i = enumerate_messages t (side_matches t i)
let m_b = m_a

let mu_a t i =
  (* The response set is the same for every challenge; sampling challenges
     through the general definition still produces the point mass. *)
  Dist.of_samples (List.init 8 (fun _ -> m_a t i))

let pairwise_l1 t =
  let k = Array.length t.family in
  Array.init k (fun i -> Array.init k (fun j -> Dist.l1_distance (mu_a t i) (mu_a t j)))

let acceptance t i j =
  let inter = List.filter (fun m -> List.mem m (m_b t j)) (m_a t i) in
  if inter <> [] then 1. else 0.

let correct t =
  let k = Array.length t.family in
  let ok = ref true in
  for i = 0 to k - 1 do
    for j = 0 to k - 1 do
      let acc = acceptance t i j in
      if i = j && acc <= 2. /. 3. then ok := false;
      if i <> j && acc >= 1. /. 3. then ok := false
    done
  done;
  !ok

let colliding_pair t =
  let k = Array.length t.family in
  let found = ref None in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      if !found = None && fingerprint t i = fingerprint t j then found := Some (i, j)
    done
  done;
  !found

let min_correct_length family =
  let k = Array.length family in
  let rec go l = if 1 lsl l >= k then l else go (l + 1) in
  max 1 (go 1)

(* --- Lemma 3.7 -------------------------------------------------------------- *)

let simple_length t = 4 * t.length

(* In the fingerprint protocol the prover's honest response is the same
   fingerprint at every node, so the concatenated (v_A, x_A, x_B, v_B)
   response is four copies of it. *)
let simple_bridge_response t i =
  let m = fingerprint t i in
  let l = t.length in
  (((((m lsl l) lor m) lsl l) lor m) lsl l) lor m

let simple_accepts t i j =
  (* Transformed protocol on G(F_i, F_j): the bridge nodes receive the
     combined response and check (a) they both received the same value and
     (b) the extracted per-node parts pass the original decision functions.
     With the best prover, acceptance is possible iff some fingerprint
     matches both sides. *)
  let candidates = List.init (1 lsl t.length) Fun.id in
  List.exists (fun m -> side_matches t i m && side_matches t j m) candidates

let simple_agrees t =
  let k = Array.length t.family in
  let ok = ref true in
  for i = 0 to k - 1 do
    for j = 0 to k - 1 do
      if simple_accepts t i j <> (acceptance t i j = 1.) then ok := false
    done
  done;
  !ok
