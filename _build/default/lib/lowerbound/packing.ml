let log2_factorial k =
  let acc = ref 0. in
  for i = 2 to k do
    acc := !acc +. (log (float_of_int i) /. log 2.)
  done;
  !acc

let log2_ball_volume ~d ~r =
  if d < 1 then invalid_arg "Packing.log2_ball_volume: need d >= 1";
  (float_of_int d *. (log (4. *. r) /. log 2.)) -. log2_factorial (d + 1)

let log2_packing_bound ~d = float_of_int d *. (log 5. /. log 2.)

let packing_bound_exact ~d = Ids_bignum.Nat.pow (Ids_bignum.Nat.of_int 5) d

let log2_family_size n =
  let fn = float_of_int n in
  Float.max 0. ((fn *. (fn -. 1.) /. 2.) -. (fn *. (log fn /. log 2.)) -. fn)

let domain_log2 ~length = 2. ** float_of_int length

let min_protocol_length n =
  let target = log2_family_size n /. (log 5. /. log 2.) in
  (* Smallest L with 2^(2^L) >= target, i.e. 2^L >= log2 target. *)
  if target <= 2. then 1
  else begin
    let needed = log target /. log 2. in
    let rec go l = if 2. ** float_of_int l >= needed then l else go (l + 1) in
    max 1 (go 1)
  end

let lower_bound_table ns = List.map (fun n -> (n, log2_family_size n, min_protocol_length n)) ns
