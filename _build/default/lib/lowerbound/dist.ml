type 'a t = ('a * float) list (* sorted support, strictly positive weights *)

let normalize pairs =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (x, w) ->
      let cur = Option.value (Hashtbl.find_opt tbl x) ~default:0. in
      Hashtbl.replace tbl x (cur +. w))
    pairs;
  Hashtbl.fold (fun x w acc -> if w > 0. then (x, w) :: acc else acc) tbl []
  |> List.sort Stdlib.compare

let of_samples xs =
  if xs = [] then invalid_arg "Dist.of_samples: empty";
  let w = 1. /. float_of_int (List.length xs) in
  normalize (List.map (fun x -> (x, w)) xs)

let of_assoc pairs =
  if List.exists (fun (_, w) -> w < 0.) pairs then invalid_arg "Dist.of_assoc: negative weight";
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0. pairs in
  if Float.abs (total -. 1.) > 1e-9 then invalid_arg "Dist.of_assoc: weights must sum to 1";
  normalize pairs

let support t = List.map fst t

let prob t x = match List.assoc_opt x t with Some w -> w | None -> 0.

let l1_distance a b =
  let keys = List.sort_uniq Stdlib.compare (support a @ support b) in
  List.fold_left (fun acc x -> acc +. Float.abs (prob a x -. prob b x)) 0. keys

let total_variation a b = l1_distance a b /. 2.

let event_gap_lower_bound a b q =
  let mass t = List.fold_left (fun acc (x, w) -> if q x then acc +. w else acc) 0. t in
  2. *. Float.abs (mass a -. mass b)
