(** Bit-size accounting helpers.

    The paper's complexity measure is the number of bits exchanged between an
    individual node and the prover (random challenge bits included, for upper
    bounds). These helpers give the exact per-value bit costs that the
    protocols charge to the ledger. *)

val ceil_log2 : int -> int
(** [ceil_log2 k] is the least [b] with [2^b >= k]; [ceil_log2 1 = 0].
    @raise Invalid_argument if [k <= 0]. *)

val id : int -> int
(** Bits needed to name one vertex out of [n]: [ceil_log2 n], at least 1. *)

val index : int -> int
(** Bits to send an index into a set of the given size (e.g. a hash-family
    index in [\[|H|\]]): [ceil_log2 size], at least 1. *)

val field : Ids_bignum.Nat.t -> int
(** Bits to send one element of a prime field given its modulus [p]:
    [bit_length (p - 1)]. *)

val field_int : int -> int
(** Native-integer variant of {!field}. *)

val perm : int -> int
(** Bits to send a full permutation of [n] elements as an image table:
    [n * id n]. *)
