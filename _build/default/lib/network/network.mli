(** Execution context for interactive distributed proofs.

    A protocol execution alternates Arthur rounds (every node independently
    draws a random challenge and sends it to the prover) and Merlin rounds
    (the prover answers each node, by unicast or broadcast). This module
    simulates those exchanges over a network graph while charging every bit
    to the {!Cost} ledger, and implements the model's two response
    disciplines from Section 2.2 of the paper:

    - {b unicast}: the prover may give a different value to each node;
    - {b broadcast}: the prover must give all nodes the same value, enforced
      distributively — each node compares its copy with its neighbors' copies
      and rejects on mismatch (on a connected graph, any non-constant
      assignment is caught by some edge).

    The prover is just caller code: honest provers compute what the protocol
    prescribes, adversarial provers may supply arbitrary arrays. *)

type t

val create : seed:int -> Ids_graph.Graph.t -> t
(** Fresh execution over the given network graph. The seed determines all of
    Arthur's randomness. *)

val graph : t -> Ids_graph.Graph.t
val n : t -> int
val cost : t -> Cost.t
val rng : t -> Ids_bignum.Rng.t

val challenge : t -> bits:int -> (Ids_bignum.Rng.t -> 'c) -> 'c array
(** Arthur round: every node draws an independent challenge with the given
    generator and is charged [bits] towards the prover. *)

val unicast : t -> bits:int -> 'r array -> 'r array
(** Merlin unicast round: the prover supplies one value per node; every node
    is charged [bits] received. @raise Invalid_argument on length mismatch. *)

val unicast_varbits : t -> bits:(int -> int) -> 'r array -> 'r array
(** Like {!unicast} with a per-node bit cost. *)

val broadcast : t -> bits:int -> 'r array -> 'r array
(** Merlin broadcast round: like {!unicast}, but the values are expected to
    be all equal; use {!broadcast_consistent_at} in the verification phase to
    apply the paper's neighbor-comparison check. *)

val broadcast_uniform : t -> bits:int -> 'r -> 'r array
(** Honest broadcast: replicate one value to all nodes and charge it. *)

val broadcast_consistent_at : t -> 'r array -> int -> bool
(** [broadcast_consistent_at t values v] is the local broadcast check at
    node [v]: its copy equals every neighbor's copy (polymorphic equality). *)

val decide : t -> (int -> bool) -> bool
(** [decide t out] runs the local decision [out v] at every node and accepts
    iff all nodes accept (the paper's global acceptance rule). *)
