lib/network/cost.ml: Array Format
