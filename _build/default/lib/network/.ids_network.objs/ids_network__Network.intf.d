lib/network/network.mli: Cost Ids_bignum Ids_graph
