lib/network/bits.ml: Ids_bignum
