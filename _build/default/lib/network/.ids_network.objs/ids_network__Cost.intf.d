lib/network/cost.mli: Format
