lib/network/network.ml: Array Cost Ids_bignum Ids_graph
