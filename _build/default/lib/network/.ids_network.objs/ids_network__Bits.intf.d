lib/network/bits.mli: Ids_bignum
