let ceil_log2 k =
  if k <= 0 then invalid_arg "Bits.ceil_log2: non-positive";
  let rec go b = if 1 lsl b >= k then b else go (b + 1) in
  go 0

let id n = max 1 (ceil_log2 n)

let index size = max 1 (ceil_log2 size)

let field p = max 1 (Ids_bignum.Nat.bit_length (Ids_bignum.Nat.sub p Ids_bignum.Nat.one))

let field_int p = field (Ids_bignum.Nat.of_int p)

let perm n = n * id n
