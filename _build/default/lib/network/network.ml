module Graph = Ids_graph.Graph
module Bitset = Ids_graph.Bitset
module Rng = Ids_bignum.Rng

type t = { graph : Graph.t; cost : Cost.t; rng : Rng.t }

let create ~seed graph = { graph; cost = Cost.create (Graph.n graph); rng = Rng.create seed }

let graph t = t.graph
let n t = Graph.n t.graph
let cost t = t.cost
let rng t = t.rng

let challenge t ~bits gen =
  Cost.charge_all_to_prover t.cost bits;
  (* Each node owns an independent generator split off the execution seed. *)
  Array.init (n t) (fun _ -> gen (Rng.split t.rng))

let check_length t a = if Array.length a <> n t then invalid_arg "Network: response length mismatch"

let unicast t ~bits responses =
  check_length t responses;
  Cost.charge_all_from_prover t.cost bits;
  responses

let unicast_varbits t ~bits responses =
  check_length t responses;
  Array.iteri (fun v _ -> Cost.charge_from_prover t.cost v (bits v)) responses;
  responses

let broadcast t ~bits responses =
  check_length t responses;
  Cost.charge_all_from_prover t.cost bits;
  responses

let broadcast_uniform t ~bits value = broadcast t ~bits (Array.make (n t) value)

let broadcast_consistent_at t values v =
  let ok = ref true in
  Bitset.iter (fun u -> if values.(u) <> values.(v) then ok := false) (Graph.neighbors t.graph v);
  !ok

let decide t out =
  let accepted = ref true in
  for v = 0 to n t - 1 do
    if not (out v) then accepted := false
  done;
  !accepted
