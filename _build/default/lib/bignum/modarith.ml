let add a b m =
  let s = Nat.add a b in
  if Nat.compare s m >= 0 then Nat.sub s m else s

let sub a b m = if Nat.compare a b >= 0 then Nat.sub a b else Nat.sub (Nat.add a m) b

let mul a b m = Nat.rem (Nat.mul a b) m

let pow a e m =
  if Nat.is_zero m then raise Division_by_zero;
  let rec go acc base e =
    if Nat.is_zero e then acc
    else begin
      let q, r = Nat.divmod e Nat.two in
      let acc = if Nat.is_one r then mul acc base m else acc in
      go acc (mul base base m) q
    end
  in
  go Nat.one (Nat.rem a m) e

let pow_int a e m =
  if e < 0 then invalid_arg "Modarith.pow_int: negative exponent";
  let rec go acc base e =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then mul acc base m else acc in
      go acc (mul base base m) (e lsr 1)
    end
  in
  go Nat.one (Nat.rem a m) e

let rec gcd a b = if Nat.is_zero b then a else gcd b (Nat.rem a b)

(* Extended Euclid, with Bezout coefficients tracked modulo [m] to stay in
   the naturals: invariant r_i = s_i * a (mod m). *)
let inv a m =
  if Nat.compare m Nat.two < 0 then invalid_arg "Modarith.inv: modulus must be >= 2";
  let a = Nat.rem a m in
  let rec go r0 s0 r1 s1 =
    if Nat.is_zero r1 then if Nat.is_one r0 then Some s0 else None
    else begin
      let q, r2 = Nat.divmod r0 r1 in
      let s2 = sub s0 (mul q s1 m) m in
      go r1 s1 r2 s2
    end
  in
  go m Nat.zero a Nat.one

let inv_int a m =
  if m < 2 then invalid_arg "Modarith.inv_int: modulus must be >= 2";
  Option.map Nat.to_int (inv (Nat.of_int ((a mod m + m) mod m)) (Nat.of_int m))
