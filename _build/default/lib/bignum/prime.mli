(** Primality testing and prime search.

    Theorem 3.2 of the paper instantiates its linear hash family with a prime
    [p] in an interval [\[10 n^3, 100 n^3\]] (Protocol 1) or
    [\[10 n^(n+2), 100 n^(n+2)\]] (Protocol 2); Bertrand's postulate
    guarantees such a prime exists. [random_prime_in] finds one by rejection
    sampling with Miller–Rabin. *)

val is_prime : ?rounds:int -> Rng.t -> Nat.t -> bool
(** [is_prime rng n] tests [n] for primality: trial division by small primes
    followed by [rounds] (default 32) Miller–Rabin rounds with random bases.
    The error probability is at most [4^-rounds] for composites. *)

val is_prime_int : int -> bool
(** Deterministic primality for native integers (trial division; intended for
    the moderate values used by Protocol 1's field, up to ~2^40). *)

val random_prime_in : Rng.t -> Nat.t -> Nat.t -> Nat.t
(** [random_prime_in rng lo hi] samples uniform odd candidates in
    [\[lo, hi\]] until one passes [is_prime].
    @raise Invalid_argument if the interval is empty.
    @raise Failure if no prime is found after a very large number of tries
    (which cannot happen on the intervals the protocols use). *)

val random_prime_in_int : Rng.t -> int -> int -> int
(** Native-integer variant of {!random_prime_in}. *)
