lib/bignum/prime.mli: Nat Rng
