lib/bignum/nat.ml: Array Buffer Format List Printf Rng Stdlib String
