lib/bignum/prime.ml: List Modarith Nat
