lib/bignum/nat.mli: Format Rng
