lib/bignum/rng.ml: Array Int64
