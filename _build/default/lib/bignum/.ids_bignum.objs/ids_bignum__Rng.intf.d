lib/bignum/rng.mli:
