lib/bignum/modarith.ml: Nat Option
