(* The verification daemon: serve estimate requests over a Unix-domain
   socket, sharded across supervised worker processes (crash retry with
   backoff, per-request deadlines, bounded-queue load shedding), appending
   every completed estimate to a crash-safe framed run log.

   Examples:
     ids-serve                                  # defaults: ./ids_serve.sock
     ids-serve --socket /tmp/ids.sock --workers 8
     ids-serve --chaos kill=0.1,seed=7          # seeded worker-kill injection
     IDS_SERVE_DEADLINE_MS=500 ids-serve        # env knobs = flag defaults

   Configuration precedence: flags over IDS_SERVE_* environment knobs over
   built-in defaults. SIGTERM/SIGINT drain gracefully: in-flight requests
   finish, queued first attempts are rejected "draining", workers exit on
   pipe EOF, and the socket and log are released. *)

module Server = Ids_serve.Server
module Chaos = Ids_serve.Chaos
module Supervisor = Ids_serve.Supervisor
open Cmdliner

let run socket workers queue retries restarts deadline_ms backoff_ms chaos log no_sync verbose
    telemetry trace =
  match
    let base = Server.of_env () in
    let opt v default = Option.value v ~default in
    let ms v default = match v with None -> default | Some ms -> ms /. 1000. in
    { Server.socket = opt socket base.Server.socket;
      sup =
        { base.Server.sup with
          Supervisor.workers = opt workers base.Server.sup.Supervisor.workers;
          queue_bound = opt queue base.Server.sup.Supervisor.queue_bound;
          max_attempts = opt retries base.Server.sup.Supervisor.max_attempts;
          restart_budget = opt restarts base.Server.sup.Supervisor.restart_budget;
          deadline = ms deadline_ms base.Server.sup.Supervisor.deadline;
          backoff_base = ms backoff_ms base.Server.sup.Supervisor.backoff_base
        };
      chaos =
        (match chaos with None -> base.Server.chaos | Some s -> Chaos.of_string s);
      log_path = opt log base.Server.log_path;
      log_sync = base.Server.log_sync && not no_sync;
      verbose = base.Server.verbose || verbose;
      telemetry = base.Server.telemetry || telemetry;
      trace_path = opt trace base.Server.trace_path
    }
  with
  | exception Invalid_argument e ->
    Printf.eprintf "ids-serve: %s\n" e;
    2
  | cfg -> (
    match Server.run cfg with
    | Ok () -> 0
    | Error e ->
      Printf.eprintf "ids-serve: %s\n" e;
      1)

let cmd =
  let socket_t =
    let doc = "Unix-domain socket path to listen on." in
    Arg.(value & opt (some string) None & info [ "socket"; "s" ] ~docv:"PATH" ~doc)
  in
  let workers_t =
    let doc = "Worker-process shard count." in
    Arg.(value & opt (some int) None & info [ "workers"; "w" ] ~docv:"N" ~doc)
  in
  let queue_t =
    let doc = "Queued-request bound; submits beyond it are shed (overloaded)." in
    Arg.(value & opt (some int) None & info [ "queue" ] ~docv:"N" ~doc)
  in
  let retries_t =
    let doc = "Attempts per request before giving up (failed)." in
    Arg.(value & opt (some int) None & info [ "retries" ] ~docv:"N" ~doc)
  in
  let restarts_t =
    let doc = "Total crash-respawns before a worker slot stays dead." in
    Arg.(value & opt (some int) None & info [ "restarts" ] ~docv:"N" ~doc)
  in
  let deadline_t =
    let doc = "Per-attempt deadline in milliseconds (0 = none)." in
    Arg.(value & opt (some float) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)
  in
  let backoff_t =
    let doc = "Base retry backoff in milliseconds (doubles per failure, capped)." in
    Arg.(value & opt (some float) None & info [ "backoff-ms" ] ~docv:"MS" ~doc)
  in
  let chaos_t =
    let doc = "Seeded worker-kill injection, e.g. kill=0.1,seed=7 (chaos testing)." in
    Arg.(value & opt (some string) None & info [ "chaos" ] ~docv:"SPEC" ~doc)
  in
  let log_t =
    let doc = "Crash-safe framed run log path (empty string disables)." in
    Arg.(value & opt (some string) None & info [ "log" ] ~docv:"PATH" ~doc)
  in
  let no_sync_t =
    let doc = "Skip the per-record fsync (faster, loses the power-failure guarantee)." in
    Arg.(value & flag & info [ "no-sync" ] ~doc)
  in
  let verbose_t =
    let doc = "Log worker lifecycle events to stderr." in
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc)
  in
  let telemetry_t =
    let doc =
      "Run workers instrumented: per-request metric deltas are folded into the live telemetry \
       registry (stats format=json/prom), records embed their metrics window, and ids-inspect \
       --live has a ledger to show."
    in
    Arg.(value & flag & info [ "telemetry" ] ~doc)
  in
  let trace_t =
    let doc =
      "Write the merged cross-process Chrome trace (queue-wait, attempts, worker compute \
       spans, stitched per trace id) to $(docv) on drain."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"PATH" ~doc)
  in
  let doc = "Serve IDS verification estimates from a supervised worker pool" in
  Cmd.v
    (Cmd.info "ids-serve" ~version:"1.0.0" ~doc)
    Term.(
      const run $ socket_t $ workers_t $ queue_t $ retries_t $ restarts_t $ deadline_t
      $ backoff_t $ chaos_t $ log_t $ no_sync_t $ verbose_t $ telemetry_t $ trace_t)

let () = exit (Cmd.eval' cmd)
