(* Run-log inspector: per-protocol summary tables, per-round bit profiles,
   and fault-leak breakdowns from the JSONL run log the bench harness
   appends to (ids_runs.jsonl by default; schema versions 2 and 3).

   Examples:
     ids-inspect                         # summarize ./ids_runs.jsonl
     ids-inspect path/to/runs.jsonl
     ids-inspect --protocol sym_dmam     # one protocol's tables only
     ids-inspect --follow ids_serve_runs.jsonl   # tail the live daemon log
     ids-inspect --self-test             # parser + renderer smoke (no file)

   Reading is lenient: the good prefix of a recovered (crash-truncated or
   partially torn) log renders normally, with a note about where and why
   reading stopped; a missing or empty log is "no records yet", not an
   error. *)

module Runlog = Ids_engine.Runlog
module Strategy = Ids_proof.Strategy
module Json = Ids_obs.Json
module Client = Ids_serve.Client
module Request = Ids_serve.Request
open Cmdliner

let ceil_log2 k =
  let rec go b p = if p >= k then b else go (b + 1) (p * 2) in
  if k <= 1 then 0 else go 0 1

(* The paper's bits-per-node bound for the protocols that have a concrete
   constant in the reproduction (E1/E2); asymptotic class otherwise. *)
let bound_for protocol n =
  match protocol with
  | "sym_dmam" | "sym_dmam_sprt" -> string_of_int ((16 * ceil_log2 n) + 28)
  | "sym_dam" -> string_of_int (6 * n * ceil_log2 n)
  | "dsym" -> "O(log n)"
  | "gni" | "gni_single" | "gni_full" | "gni_full_run" | "gni_induced" -> "O(n log n)"
  | _ -> "-"

(* --- grouping ------------------------------------------------------------------ *)

(* One row per (protocol, n, prover, fault): the log is append-only, so the
   last record of a group is the most recent run; [runs] counts how many the
   file holds. First-appearance order is preserved everywhere. *)
type group = { gprotocol : string; gn : int; gprover : string; gfault : string; mutable runs : int; mutable last : Runlog.record }

let group_records records =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (r : Runlog.record) ->
      let fault = Option.value r.Runlog.fault ~default:"" in
      let key = (r.Runlog.protocol, r.Runlog.n, r.Runlog.prover, fault) in
      match Hashtbl.find_opt tbl key with
      | Some g ->
        g.runs <- g.runs + 1;
        g.last <- r
      | None ->
        let g = { gprotocol = r.Runlog.protocol; gn = r.Runlog.n; gprover = r.Runlog.prover; gfault = fault; runs = 1; last = r } in
        Hashtbl.add tbl key g;
        order := g :: !order)
    records;
  List.rev !order

let protocols_in groups =
  List.fold_left (fun acc g -> if List.mem g.gprotocol acc then acc else g.gprotocol :: acc) [] groups
  |> List.rev

(* --- metrics access -------------------------------------------------------------- *)

let counter metrics name =
  match Option.bind metrics (Json.member "counters") with
  | Some (Json.Arr cs) ->
    List.find_opt (fun c -> Json.member "name" c |> Fun.flip Option.bind Json.to_string = Some name) cs
  | _ -> None

let counter_rounds c =
  match Option.bind c (Json.member "rounds") with
  | Some (Json.Arr rows) ->
    Some
      (List.filter_map
      (fun row ->
        match row with
        | Json.Arr [ r; s; m ] -> (
          match (Json.to_int r, Json.to_int s, Json.to_int m) with
          | Some r, Some s, Some m -> Some (r, s, m)
          | _ -> None)
        | _ -> None)
         rows)
  | _ -> None

let counter_total c = Option.bind c (Json.member "total") |> Fun.flip Option.bind Json.to_int

(* --- report sections -------------------------------------------------------------- *)

let summary_table groups =
  List.iter
    (fun protocol ->
      Printf.printf "\n== %s ==\n" protocol;
      Printf.printf "%5s  %-22s %-26s %4s %7s %7s %15s %10s %6s %12s\n" "n" "prover" "fault" "runs"
        "trials" "rate" "95% CI" "bits/node" "max" "paper bound";
      List.iter
        (fun g ->
          if g.gprotocol = protocol then
            let r = g.last in
            Printf.printf "%5d  %-22s %-26s %4d %7d %7.3f [%.3f,%.3f] %10.1f %6d %12s\n" g.gn g.gprover
              (if g.gfault = "" then "-" else g.gfault)
              g.runs r.Runlog.trials r.Runlog.rate r.Runlog.ci_low r.Runlog.ci_high
              r.Runlog.mean_bits r.Runlog.max_bits (bound_for protocol g.gn))
        groups)
    (protocols_in groups)

(* Per-round bit profile of each group's most recent traced (v3 + metrics)
   record: the prover->nodes and nodes->prover counters by round, plus the
   heaviest single-node cell — the max-over-nodes view the paper's per-node
   bounds are stated in. Counters aggregate the whole estimate, so sums are
   shown per trial. *)
let rounds_detail groups =
  let any = ref false in
  List.iter
    (fun g ->
      let metrics = g.last.Runlog.metrics in
      let down = counter metrics "net.from_prover_bits" in
      let up = counter metrics "net.to_prover_bits" in
      match (counter_rounds down, g.last.Runlog.trials) with
      | None, _ | _, 0 -> ()
      | Some down_rounds, trials ->
        if not !any then begin
          any := true;
          print_endline "\n== per-round bit profile (latest traced record per group) ==";
          print_endline "   bits averaged per trial; `max cell` is the heaviest (round, node) cell"
        end;
        let up_rounds = Option.value (counter_rounds up) ~default:[] in
        let t = float_of_int trials in
        Printf.printf "\n%s  n = %d  prover = %s%s  (%d trials)\n" g.gprotocol g.gn g.gprover
          (if g.gfault = "" then "" else Printf.sprintf "  fault = %s" g.gfault)
          trials;
        Printf.printf "  %5s | %14s %14s | %10s\n" "round" "down bits" "up bits" "max cell";
        let rounds =
          List.sort_uniq compare (List.map (fun (r, _, _) -> r) down_rounds @ List.map (fun (r, _, _) -> r) up_rounds)
        in
        List.iter
          (fun round ->
            let pick rows = List.find_opt (fun (r, _, _) -> r = round) rows in
            let sum rows = match pick rows with Some (_, s, _) -> float_of_int s /. t | None -> 0. in
            let cell rows = match pick rows with Some (_, _, m) -> m | None -> 0 in
            Printf.printf "  %5d | %14.1f %14.1f | %10d\n" round (sum down_rounds) (sum up_rounds)
              (max (cell down_rounds) (cell up_rounds)))
          rounds;
        (match (counter_total down, counter_total up) with
        | Some d, Some u ->
          Printf.printf "  total | %14.1f %14.1f |\n" (float_of_int d /. t) (float_of_int u /. t)
        | _ -> ()))
    groups;
  !any

(* Acceptance-rate deltas against each block's fault="none" baseline — the
   E13 leak view. For honest provers a negative delta is completeness loss;
   for adversaries a positive delta is a soundness leak (flagged when it
   clears the baseline's upper confidence bound). *)
let fault_breakdown groups =
  let blocks = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun g ->
      if g.gfault <> "" then begin
        let key = (g.gprotocol, g.gn, g.gprover) in
        if not (Hashtbl.mem blocks key) then begin
          Hashtbl.add blocks key ();
          order := key :: !order
        end
      end)
    groups;
  let any = ref false in
  List.iter
    (fun (protocol, n, prover) ->
      let of_block = List.filter (fun g -> g.gprotocol = protocol && g.gn = n && g.gprover = prover) groups in
      match List.find_opt (fun g -> g.gfault = "none") of_block with
      | None -> ()
      | Some base ->
        if not !any then begin
          any := true;
          print_endline "\n== fault degradation vs the fault=none baseline ==";
          print_endline "   ! = acceptance above the baseline's CI upper bound (soundness leak if the"
          ; print_endline "       prover is an adversary; faults should only add reasons to reject)"
        end;
        Printf.printf "\n%s  n = %d  prover = %s  (baseline rate %.3f)\n" protocol n prover
          base.last.Runlog.rate;
        Printf.printf "  %-36s | %7s %8s | %10s\n" "fault" "rate" "delta" "bits/node";
        List.iter
          (fun g ->
            if g.gfault <> "" && g.gfault <> "none" then
              let r = g.last in
              let delta = r.Runlog.rate -. base.last.Runlog.rate in
              Printf.printf "  %-36s | %7.3f %+8.3f | %10.1f%s\n" g.gfault r.Runlog.rate delta
                r.Runlog.mean_bits
                (if r.Runlog.rate > base.last.Runlog.ci_high then "  !" else ""))
          of_block)
    (List.rev !order);
  !any

(* Frontier view: records whose prover is an encoded cheat strategy (the
   E17 search harness logs the best-found point per protocol under its
   `strategy v1 ...` encoding). The encoding is decoded back through
   Strategy.decode, so a corrupted or hand-edited label is flagged instead
   of silently tabulated; the axis settings are shown without the
   magic/version/seed prefix to keep rows readable. *)
let strategy_prefix = "strategy v1 "

let is_strategy_prover prover =
  String.length prover >= String.length strategy_prefix
  && String.sub prover 0 (String.length strategy_prefix) = strategy_prefix

let strategy_axes prover =
  match Strategy.decode prover with
  | Error e -> Printf.sprintf "INVALID ENCODING (%s)" e
  | Ok s ->
    let names = Strategy.axis_names s.Strategy.protocol in
    let levels = Strategy.levels s.Strategy.protocol in
    String.concat " "
      (Array.to_list
         (Array.mapi
            (fun i name -> Printf.sprintf "%s=%s" name levels.(i).(s.Strategy.point.(i)))
            names))

let frontier_table groups =
  let rows = List.filter (fun g -> is_strategy_prover g.gprover) groups in
  if rows = [] then false
  else begin
    print_endline "\n== empirical soundness frontier (best-found cheat strategies, E17) ==";
    Printf.printf "%-10s %4s  %-58s %-14s %7s %15s  %7s\n" "protocol" "n" "strategy (decoded axes)" "fault"
      "rate" "95% CI" "accepts";
    List.iter
      (fun g ->
        let r = g.last in
        Printf.printf "%-10s %4d  %-58s %-14s %7.4f [%.4f,%.4f]  %4d/%d\n" g.gprotocol g.gn
          (strategy_axes g.gprover)
          (if g.gfault = "" then "-" else g.gfault)
          r.Runlog.rate r.Runlog.ci_low r.Runlog.ci_high r.Runlog.accepts r.Runlog.trials)
      rows;
    true
  end

let report ?protocol records =
  let records =
    match protocol with
    | None -> records
    | Some p -> List.filter (fun (r : Runlog.record) -> r.Runlog.protocol = p) records
  in
  if records = [] then print_endline "no matching records"
  else begin
    let groups = group_records records in
    Printf.printf "%d records, %d groups\n" (List.length records) (List.length groups);
    summary_table groups;
    let frontier = frontier_table groups in
    let traced = rounds_detail groups in
    let faulted = fault_breakdown groups in
    if not traced then
      print_endline "\n(no traced records — run the bench with IDS_TRACE=1 for per-round profiles)";
    ignore faulted;
    ignore frontier
  end

(* --- self-test --------------------------------------------------------------------- *)

let sample_v2 =
  {|{"schema_version":2,"protocol":"sym_dmam","n":16,"prover":"honest","trials":80,"accepts":80,"rate":1,"ci_low":0.954,"ci_high":1,"mean_bits":87.2,"max_bits":92,"domains":4,"stopped_early":false}|}

let sample_v2_fault =
  {|{"schema_version":2,"protocol":"sym_dmam","n":16,"prover":"byzantine:random-perm","fault":"drop=0.05","trials":80,"accepts":6,"rate":0.075,"ci_low":0.035,"ci_high":0.154,"mean_bits":87.2,"max_bits":92,"domains":4,"stopped_early":false}|}

let sample_v2_none =
  {|{"schema_version":2,"protocol":"sym_dmam","n":16,"prover":"byzantine:random-perm","fault":"none","trials":80,"accepts":3,"rate":0.0375,"ci_low":0.0128,"ci_high":0.105,"mean_bits":87.2,"max_bits":92,"domains":4,"stopped_early":false}|}

let sample_v3 =
  {|{"schema_version":3,"protocol":"sym_dam","n":8,"prover":"honest","trials":10,"accepts":10,"rate":1,"ci_low":0.722,"ci_high":1,"mean_bits":150.4,"max_bits":161,"domains":2,"stopped_early":false,"metrics":{"counters":[{"name":"net.from_prover_bits","total":1840,"rounds":[[2,1200,160],[3,640,86]]},{"name":"net.to_prover_bits","total":640,"rounds":[[1,640,86]]}],"histos":[{"name":"mont.pow_bits","buckets":[[5,40]]}],"spans_dropped":0}}|}

let sample_frontier =
  {|{"schema_version":3,"protocol":"sym_dmam","n":8,"prover":"strategy v1 sym_dmam seed=0 perm=fallback split=none sums=consistent echo=root fault=none","trials":16384,"accepts":12,"rate":0.00073242,"ci_low":0.00041852,"ci_high":0.00128128,"mean_bits":76,"max_bits":76,"domains":1,"stopped_early":false}|}

let sample_frontier_fault =
  {|{"schema_version":3,"protocol":"sym_dmam","n":8,"prover":"strategy v1 sym_dmam seed=0 perm=fallback split=none sums=consistent echo=root fault=none","fault":"crash-vacuous","trials":16384,"accepts":1603,"rate":0.09783936,"ci_low":0.09336987,"ci_high":0.10249527,"mean_bits":76,"max_bits":76,"domains":1,"stopped_early":false}|}

let sample_unknown =
  {|{"schema_version":99,"protocol":"x","n":1,"prover":"p","trials":1,"accepts":1,"rate":1,"ci_low":1,"ci_high":1,"mean_bits":1,"max_bits":1,"domains":1,"stopped_early":false}|}

let self_test () =
  let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("self-test FAILED: " ^ m); exit 1) fmt in
  let ok name line =
    match Runlog.of_line line with Ok r -> r | Error e -> fail "%s did not parse: %s" name e
  in
  let v2 = ok "v2 sample" sample_v2 in
  if v2.Runlog.version <> 2 || v2.Runlog.metrics <> None then fail "v2 sample misread";
  let v2f = ok "v2 fault sample" sample_v2_fault in
  if v2f.Runlog.fault <> Some "drop=0.05" then fail "fault label lost";
  let v3 = ok "v3 sample" sample_v3 in
  if v3.Runlog.version <> 3 then fail "v3 version misread";
  let down = counter v3.Runlog.metrics "net.from_prover_bits" in
  (match counter_total down with
  | Some 1840 -> ()
  | _ -> fail "v3 metrics counter total misread");
  (match counter_rounds down with
  | Some [ (2, 1200, 160); (3, 640, 86) ] -> ()
  | _ -> fail "v3 per-round cells misread");
  (match Runlog.of_line sample_unknown with
  | Error e when String.length e >= 22 && String.sub e 0 22 = "unknown schema_version" -> ()
  | Error e -> fail "wrong error for v99: %s" e
  | Ok _ -> fail "v99 record accepted");
  (match Runlog.of_line "not json at all" with
  | Error _ -> ()
  | Ok _ -> fail "garbage line accepted");
  if bound_for "sym_dmam" 16 <> "92" then fail "paper bound (Protocol 1, n=16) wrong";
  if bound_for "sym_dam" 16 <> "384" then fail "paper bound (Protocol 2, n=16) wrong";
  (* The frontier sample's prover must round-trip through the strategy
     codec — the table decodes it for the axes column. *)
  let fr = ok "frontier sample" sample_frontier in
  if not (is_strategy_prover fr.Runlog.prover) then fail "frontier prover not recognized";
  (match Strategy.decode fr.Runlog.prover with
  | Error e -> fail "frontier prover does not decode: %s" e
  | Ok s ->
    if Strategy.encode s <> fr.Runlog.prover then fail "frontier prover round-trip changed";
    if s.Strategy.protocol <> Strategy.Sym_dmam || s.Strategy.seed <> 0 then
      fail "frontier prover decoded to the wrong strategy");
  (match Strategy.decode "strategy v1 sym_dmam seed=0 perm=warp" with
  | Ok _ -> fail "bogus strategy level accepted"
  | Error e ->
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    if not (contains e "token") then fail "strategy decode error lacks token position: %s" e);
  (* Exercise every renderer section on the embedded samples. *)
  report
    [ v2; v2f; ok "v2 none sample" sample_v2_none; v3; fr; ok "frontier fault sample" sample_frontier_fault ];
  print_endline "\nids-inspect self-test: OK";
  0

(* --- follow mode --------------------------------------------------------------------- *)

(* Tail a live log (the serving daemon's, typically): print each new record
   as one line, resuming from the previous read's good_end. A torn tail is
   the normal mid-append state — stay quiet and retry; a bad line is
   corruption — warn once and stop advancing past the good prefix. *)
let follow_log file protocol =
  let offset = ref 0 in
  let warned = ref (-1) in
  let print_record (r : Runlog.record) =
    match protocol with
    | Some p when r.Runlog.protocol <> p -> ()
    | _ ->
      Printf.printf "%-12s n=%-4d %-28s %-20s trials=%-6d rate=%.4f [%.4f,%.4f] bits/node=%.1f\n%!"
        r.Runlog.protocol r.Runlog.n r.Runlog.prover
        (match r.Runlog.fault with Some f -> "fault=" ^ f | None -> "fault=-")
        r.Runlog.trials r.Runlog.rate r.Runlog.ci_low r.Runlog.ci_high r.Runlog.mean_bits
  in
  Printf.printf "following %s (interrupt to stop)\n%!" file;
  let rec loop () : int =
    (if Sys.file_exists file then
       match Runlog.read_from file ~offset:!offset with
       | Error e -> Printf.eprintf "ids-inspect: %s\n%!" e
       | Ok { Runlog.records; good_end; tail } ->
         List.iter print_record records;
         offset := good_end;
         (match tail with
         | Some (Runlog.Bad_line _ as t) when !warned <> good_end ->
           warned := good_end;
           Printf.eprintf "ids-inspect: %s: %s\n%!" file (Runlog.tail_error_to_string t)
         | _ -> ()));
    Unix.sleepf 0.25;
    loop ()
  in
  loop ()

(* --- live telemetry dashboard -------------------------------------------------------- *)

(* Poll the daemon's telemetry endpoint (a Stats request with format=json)
   and render the service / per-protocol / per-shard tables.  The JSON body
   is produced by Telemetry.to_json; rendering is lenient so a newer daemon
   with extra fields still displays. *)

let jget j path = List.fold_left (fun acc k -> Option.bind acc (Json.member k)) (Some j) path
let jint j path = Option.value (Option.bind (jget j path) Json.to_int) ~default:0
let jfloat j path = Option.value (Option.bind (jget j path) Json.to_float) ~default:0.
let jstr j path = Option.value (Option.bind (jget j path) Json.to_string) ~default:"?"

let hist_cols j key =
  Printf.sprintf "%8.2f %8.2f %8.2f" (jfloat j [ key; "mean" ]) (jfloat j [ key; "p50" ])
    (jfloat j [ key; "p99" ])

let render_live socket body =
  match Json.parse body with
  | Error e -> Printf.eprintf "ids-inspect: telemetry body does not parse: %s\n%!" e
  | Ok j ->
    Printf.printf "ids-serve @ %s   up %.1fs   availability %.2f%%   lost deltas %d   flushes %d\n"
      socket (jfloat j [ "uptime_s" ])
      (100. *. jfloat j [ "availability" ])
      (jint j [ "lost_deltas" ]) (jint j [ "flushes" ]);
    (match jget j [ "service" ] with
    | Some (Json.Obj kvs) ->
      print_string "service:";
      List.iter
        (fun (k, v) ->
          match Json.to_int v with
          | Some n -> Printf.printf " %s=%d" k n
          | None -> ())
        kvs;
      print_newline ()
    | _ -> ());
    (match jget j [ "protocols" ] with
    | Some (Json.Arr (_ :: _ as ps)) ->
      Printf.printf "\n%-14s %6s %6s %6s | %26s | %26s | %26s\n" "protocol" "compl" "fail"
        "retry" "queue ms mean/p50/p99" "run ms mean/p50/p99" "total ms mean/p50/p99";
      List.iter
        (fun p ->
          Printf.printf "%-14s %6d %6d %6d | %s | %s | %s\n"
            (jstr p [ "protocol" ])
            (jint p [ "completed" ])
            (jint p [ "failed" ])
            (jint p [ "retries" ])
            (hist_cols p "queue_ms") (hist_cols p "run_ms") (hist_cols p "total_ms"))
        ps
    | _ -> print_endline "\n(no requests observed yet)");
    (match jget j [ "shards" ] with
    | Some (Json.Arr (_ :: _ as ss)) ->
      Printf.printf "\n%5s %8s %4s %7s %5s  %s\n" "shard" "pid" "gen" "frames" "lost"
        "ledger counters";
      List.iter
        (fun s ->
          let counters =
            match jget s [ "counters" ] with
            | Some (Json.Obj kvs) ->
              String.concat " "
                (List.filter_map
                   (fun (k, v) ->
                     Option.map (fun n -> Printf.sprintf "%s=%d" k n) (Json.to_int v))
                   kvs)
            | _ -> ""
          in
          Printf.printf "%5d %8d %4d %7d %5d  %s\n" (jint s [ "wid" ]) (jint s [ "pid" ])
            (jint s [ "generations" ])
            (jint s [ "frames" ])
            (jint s [ "lost_deltas" ])
            (if counters = "" then "(no frames yet)" else counters))
        ss
    | _ -> ())

let fetch_stats socket fmt =
  match Client.connect ~wait:2. socket with
  | Error e -> Error e
  | Ok c ->
    Fun.protect
      ~finally:(fun () -> Client.close c)
      (fun () ->
        match
          Client.request c { Request.id = "inspect"; op = Request.Stats fmt; trace = None }
        with
        | Ok (Request.Stats_reply { body = Some b; _ }) -> Ok b
        | Ok (Request.Stats_reply { body = None; _ }) ->
          Error "daemon answered without a telemetry body"
        | Ok (Request.Rejected { reject = Request.Bad_request e; _ }) -> Error e
        | Ok _ -> Error "unexpected response to the stats request"
        | Error e -> Error e)

let live socket interval once prom =
  let fmt = if prom then Request.Prom else Request.Json_full in
  let rec loop () =
    match fetch_stats socket fmt with
    | Error e ->
      Printf.eprintf "ids-inspect: %s: %s\n%!" socket e;
      if once then 1
      else begin
        Unix.sleepf interval;
        loop ()
      end
    | Ok body ->
      if not once then print_string "\027[H\027[2J";
      if prom then print_string body else render_live socket body;
      flush stdout;
      if once then 0
      else begin
        Unix.sleepf interval;
        loop ()
      end
  in
  loop ()

(* --- bench trajectory ------------------------------------------------------------------ *)

(* One headline line per committed BENCH_*.json: the repo's performance and
   acceptance trajectory at a glance.  Known artifacts get a real extractor;
   unknown ones still prove they parse.  A parse failure is an error exit so
   `make check` catches a corrupted artifact. *)

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let jlist j path = match Option.bind (jget j path) Json.to_list with Some l -> l | None -> []

let best_speedup rows key =
  List.fold_left (fun acc r -> Float.max acc (jfloat r [ key ])) 0. rows

let bench_headline name j =
  match name with
  | "BENCH_modarith.json" ->
    let rows = jlist j [ "results" ] in
    let pows = List.filter (fun r -> jstr r [ "op" ] = "pow") rows in
    Printf.sprintf "%d ops timed; best pow speedup x%.2f (Montgomery ctx vs naive)"
      (List.length rows) (best_speedup pows "speedup")
  | "BENCH_setup.json" ->
    let rows = jlist j [ "prime_search" ] in
    Printf.sprintf "%d prime-search ranges; best gated speedup x%.2f" (List.length rows)
      (best_speedup rows "speedup")
  | "BENCH_frontier.json" ->
    let ps = jlist j [ "protocols" ] in
    let sound =
      List.for_all (fun p -> jfloat p [ "best"; "rate" ] <= jfloat p [ "bound" ]) ps
    in
    Printf.sprintf "%d protocols searched; best cheat rate %s the soundness bound on all"
      (List.length ps)
      (if sound then "within" else "ABOVE")
  | "BENCH_serve.json" ->
    Printf.sprintf
      "%d/%d requests under chaos; availability %.2f%%; %.0f rps; p50/p99 %.1f/%.1f ms; \
       bit_identical=%b"
      (jint j [ "requests"; "completed" ])
      (jint j [ "requests"; "sent" ])
      (100. *. jfloat j [ "availability" ])
      (jfloat j [ "throughput_rps" ])
      (jfloat j [ "latency_ms"; "p50" ])
      (jfloat j [ "latency_ms"; "p99" ])
      (jget j [ "bit_identical" ] = Some (Json.Bool true))
  | "BENCH_scale.json" ->
    Printf.sprintf "n=%d; pls_tree %.0f nodes/s; apihash %.0f nodes/s; peak rss %.0f MB"
      (jint j [ "n" ])
      (jfloat j [ "pls_tree"; "nodes_per_sec" ])
      (jfloat j [ "apihash"; "nodes_per_sec" ])
      (jfloat j [ "peak_rss_mb" ])
  | "BENCH_telemetry.json" ->
    Printf.sprintf
      "ledger_exact=%b under chaos (%d lost deltas counted); trace pids=%d; enabled overhead \
       %.2f%%"
      (jget j [ "ledger_exact" ] = Some (Json.Bool true))
      (jint j [ "lost_deltas" ])
      (jint j [ "trace"; "pids" ])
      (jfloat j [ "overhead"; "overhead_pct" ])
  | _ -> "(parsed OK; no summary extractor)"

let bench_summary dir =
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           String.length f > 11
           && String.sub f 0 6 = "BENCH_"
           && Filename.check_suffix f ".json")
    |> List.sort compare
  in
  if files = [] then begin
    Printf.printf "no BENCH_*.json artifacts in %s\n" dir;
    0
  end
  else begin
    Printf.printf "== bench trajectory (%s) ==\n" dir;
    let failed = ref 0 in
    List.iter
      (fun f ->
        match Json.parse (read_all (Filename.concat dir f)) with
        | Error e ->
          incr failed;
          Printf.printf "%-24s PARSE ERROR: %s\n" f e
        | Ok j ->
          let mode = match jget j [ "mode" ] with Some (Json.Str m) -> m | _ -> "-" in
          Printf.printf "%-24s %-6s %s\n" f mode (bench_headline f j))
      files;
    if !failed > 0 then begin
      Printf.eprintf "ids-inspect: %d bench artifact(s) failed to parse\n" !failed;
      1
    end
    else 0
  end

(* --- CLI ----------------------------------------------------------------------------- *)

let run file protocol self follow live_flag socket interval once prom bench =
  if self then self_test ()
  else
    match bench with
    | Some dir -> bench_summary dir
    | None ->
      if live_flag || prom then live socket interval once prom
      else if follow then follow_log file protocol
  else if not (Sys.file_exists file) then begin
    Printf.printf "%s: no records yet\n" file;
    0
  end
  else
    match Runlog.read_file_lenient file with
    | Error e ->
      Printf.eprintf "ids-inspect: %s\n" e;
      1
    | Ok { Runlog.records; tail; _ } ->
      Printf.printf "%s:\n" file;
      if records = [] && tail = None then print_endline "no records yet"
      else begin
        report ?protocol records;
        match tail with
        | None -> ()
        | Some t ->
          Printf.printf "\n(reading stopped early: %s)\n" (Runlog.tail_error_to_string t)
      end;
      0

let cmd =
  let file_t =
    let doc = "The JSONL run log to inspect." in
    Arg.(value & pos 0 string "ids_runs.jsonl" & info [] ~docv:"FILE" ~doc)
  in
  let protocol_t =
    let doc = "Only show records of this protocol (e.g. sym_dmam, dsym, gni_single)." in
    Arg.(value & opt (some string) None & info [ "protocol" ] ~doc)
  in
  let self_t =
    let doc = "Run the built-in parser/renderer smoke test and exit (reads no files)." in
    Arg.(value & flag & info [ "self-test" ] ~doc)
  in
  let follow_t =
    let doc =
      "Tail the log: print each new record as it is appended (the live view of a \
       running ids-serve daemon). Runs until interrupted."
    in
    Arg.(value & flag & info [ "follow"; "f" ] ~doc)
  in
  let live_t =
    let doc =
      "Live telemetry dashboard: poll a running ids-serve daemon's stats endpoint and \
       render the service / per-protocol latency / per-shard ledger tables. Refreshes \
       until interrupted (see $(b,--once), $(b,--interval))."
    in
    Arg.(value & flag & info [ "live" ] ~doc)
  in
  let socket_t =
    let doc = "The daemon socket the live dashboard connects to." in
    Arg.(value & opt string "ids_serve.sock" & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let interval_t =
    let doc = "Live dashboard refresh period in seconds." in
    Arg.(value & opt float 2.0 & info [ "interval" ] ~docv:"SECS" ~doc)
  in
  let once_t =
    let doc = "Render the live dashboard once and exit (scripting / tests)." in
    Arg.(value & flag & info [ "once" ] ~doc)
  in
  let prom_t =
    let doc = "With $(b,--live): print the Prometheus text exposition instead of tables." in
    Arg.(value & flag & info [ "prom" ] ~doc)
  in
  let bench_t =
    let doc =
      "Summarize every committed BENCH_*.json artifact in $(docv) (default $(b,.)) as one \
       trajectory table and exit; a non-parsing artifact is an error."
    in
    Arg.(
      value
      & opt ~vopt:(Some ".") (some dir) None
      & info [ "bench-summary" ] ~docv:"DIR" ~doc)
  in
  let doc = "Inspect the machine-readable run log of the IDS bench harness" in
  Cmd.v
    (Cmd.info "ids-inspect" ~version:"1.0.0" ~doc)
    Term.(
      const run $ file_t $ protocol_t $ self_t $ follow_t $ live_t $ socket_t $ interval_t
      $ once_t $ prom_t $ bench_t)

let () = exit (Cmd.eval' cmd)
