(* Command-line driver: run any of the paper's protocols on generated
   instances and inspect verdicts, per-node communication and soundness.

   Examples:
     ids-demo sym -n 32 --seed 7             # Protocol 1 on a symmetric graph
     ids-demo sym -n 32 --asymmetric --adversary random-perm --trials 200
     ids-demo sym-dam -n 12
     ids-demo dsym -n 16 -r 3 --perturb
     ids-demo gni -n 6 --isomorphic --repetitions 400
     ids-demo lcp -n 24
     ids-demo lowerbound -n 1000000 *)

module Graph = Ids_graph.Graph
module Family = Ids_graph.Family
module Iso = Ids_graph.Iso
module Rng = Ids_bignum.Rng
open Ids_proof
open Cmdliner

let report outcome =
  Printf.printf "verdict      : %s\n" (if outcome.Outcome.accepted then "ACCEPT" else "REJECT");
  Printf.printf "prover       : %s\n" outcome.Outcome.prover;
  Printf.printf "bits/node    : %d (max, challenges + responses)\n" outcome.Outcome.max_bits_per_node;
  Printf.printf "response bits: %d (max)\n" outcome.Outcome.max_response_bits;
  Printf.printf "total bits   : %d\n" outcome.Outcome.total_bits

module Engine = Ids_engine.Engine

let report_estimate what (est : Engine.estimate) =
  Printf.printf "%s: %d/%d accepted (rate %.3f, 95%% CI [%.3f, %.3f]), mean %.1f bits/node, %d domain(s)\n"
    what est.Engine.accepts est.Engine.trials est.Engine.rate est.Engine.ci_low est.Engine.ci_high
    est.Engine.mean_bits est.Engine.domains

(* Common options. *)
let seed_t =
  let doc = "Random seed (drives Arthur's coins and instance generation)." in
  Arg.(value & opt int 1 & info [ "seed" ] ~doc)

let n_t default =
  let doc = "Instance size parameter." in
  Arg.(value & opt int default & info [ "n"; "size" ] ~doc)

let trials_t =
  let doc = "If positive, estimate the acceptance rate over this many runs." in
  Arg.(value & opt int 0 & info [ "trials" ] ~doc)

(* --- sym (Protocol 1) --------------------------------------------------------- *)

let sym_cmd =
  let asymmetric_t =
    Arg.(value & flag & info [ "asymmetric" ] ~doc:"Use an asymmetric (NO) instance.")
  in
  let adversary_t =
    let doc = "Prover strategy: honest, random-perm, forged-sums, identity, split-broadcast." in
    Arg.(value & opt string "honest" & info [ "adversary" ] ~doc)
  in
  let run seed n asymmetric adversary trials =
    let rng = Rng.create seed in
    let g = if asymmetric then Family.random_asymmetric rng n else Family.random_symmetric rng n in
    Printf.printf "instance: %d nodes, %d edges, symmetric = %b\n" (Graph.n g) (Graph.edge_count g)
      (Iso.is_symmetric g);
    let prover =
      match adversary with
      | "honest" -> Sym_dmam.honest
      | other -> (
        match Adversary.lookup Adversary.sym_dmam other with
        | Ok p -> p
        | Error msg ->
          Printf.eprintf "ids-demo: %s\n" msg;
          exit 2)
    in
    if trials > 0 then
      report_estimate "acceptance" (Stats.acceptance_ci ~trials (fun s -> Sym_dmam.run ~seed:s g prover))
    else report (Sym_dmam.run ~seed g prover)
  in
  let doc = "Protocol 1: dMAM[O(log n)] for Graph Symmetry (Theorem 1.1)." in
  Cmd.v (Cmd.info "sym" ~doc) Term.(const run $ seed_t $ n_t 16 $ asymmetric_t $ adversary_t $ trials_t)

(* --- sym-dam (Protocol 2) ------------------------------------------------------ *)

let sym_dam_cmd =
  let asymmetric_t =
    Arg.(value & flag & info [ "asymmetric" ] ~doc:"Use an asymmetric (NO) instance.")
  in
  let run seed n asymmetric trials =
    let rng = Rng.create seed in
    let g = if asymmetric then Family.random_asymmetric rng n else Family.random_symmetric rng n in
    let prover = if asymmetric then Sym_dam.adversary_search else Sym_dam.honest in
    Printf.printf "instance: %d nodes, symmetric = %b; prime has %d bits\n" (Graph.n g)
      (Iso.is_symmetric g)
      (Ids_bignum.Nat.bit_length (Sym_dam.params_for ~seed g).Sym_dam.p);
    if trials > 0 then
      report_estimate "acceptance" (Stats.acceptance_ci ~trials (fun s -> Sym_dam.run ~seed:s g prover))
    else report (Sym_dam.run ~seed g prover)
  in
  let doc = "Protocol 2: dAM[O(n log n)] for Graph Symmetry (Theorem 1.3)." in
  Cmd.v (Cmd.info "sym-dam" ~doc) Term.(const run $ seed_t $ n_t 10 $ asymmetric_t $ trials_t)

(* --- dsym ----------------------------------------------------------------------- *)

let dsym_cmd =
  let r_t = Arg.(value & opt int 2 & info [ "r"; "path" ] ~doc:"Half path length of the dumbbell.") in
  let perturb_t = Arg.(value & flag & info [ "perturb" ] ~doc:"Use a perturbed (NO) instance.") in
  let run seed n r perturb trials =
    let rng = Rng.create seed in
    let f = Family.random_asymmetric rng n in
    let g = if perturb then Family.dsym_perturbed rng f r else Family.dsym_graph f r in
    let inst = Dsym.make_instance ~n ~r g in
    Printf.printf "instance: %d vertices, DSym member = %b\n" (Graph.n g) (Family.is_dsym_member ~n ~r g);
    let prover = if perturb then Dsym.adversary_consistent else Dsym.honest in
    if trials > 0 then
      report_estimate "acceptance" (Stats.acceptance_ci ~trials (fun s -> Dsym.run ~seed:s inst prover))
    else report (Dsym.run ~seed inst prover)
  in
  let doc = "The dAM[O(log n)] protocol for Dumbbell Symmetry (Theorem 1.2)." in
  Cmd.v (Cmd.info "dsym" ~doc) Term.(const run $ seed_t $ n_t 8 $ r_t $ perturb_t $ trials_t)

(* --- gni ------------------------------------------------------------------------- *)

let gni_cmd =
  let iso_t =
    Arg.(value & flag & info [ "isomorphic" ] ~doc:"Use an isomorphic (NO) instance pair.")
  in
  let reps_t =
    Arg.(value & opt int 400 & info [ "repetitions" ] ~doc:"Parallel repetitions for amplification.")
  in
  let single_t =
    Arg.(value & flag & info [ "single" ] ~doc:"Run one repetition instead of the amplified protocol.")
  in
  let run seed n isomorphic reps single trials =
    let rng = Rng.create seed in
    let inst = if isomorphic then Gni.no_instance rng n else Gni.yes_instance rng n in
    let params = Gni.params_for ~repetitions:reps ~seed inst in
    Printf.printf "instance: two %d-vertex graphs, isomorphic = %b\n" n
      (Iso.are_isomorphic inst.Gni.g0 inst.Gni.g1);
    Printf.printf "params: q = %d, k = %d, t = %d, threshold = %d, bounds %.3f / %.3f\n" params.Gni.q
      params.Gni.copies params.Gni.repetitions params.Gni.threshold (Gni.yes_rate_bound params)
      (Gni.no_rate_bound params);
    let exec s = if single then Gni.run_single ~params ~seed:s inst Gni.honest else Gni.run ~params ~seed:s inst Gni.honest in
    if trials > 0 then report_estimate "acceptance" (Stats.acceptance_ci ~trials exec)
    else report (exec seed)
  in
  let doc = "The dAMAM[O(n log n)] Goldwasser-Sipser protocol for GNI (Theorem 1.5)." in
  Cmd.v (Cmd.info "gni" ~doc)
    Term.(const run $ seed_t $ n_t 6 $ iso_t $ reps_t $ single_t $ trials_t)

(* --- gni-full ---------------------------------------------------------------------- *)

let gni_full_cmd =
  let iso_t =
    Arg.(value & flag & info [ "isomorphic" ] ~doc:"Use an isomorphic (NO) instance pair.")
  in
  let reps_t =
    Arg.(value & opt int 400 & info [ "repetitions" ] ~doc:"Parallel repetitions for amplification.")
  in
  let run seed n isomorphic reps trials =
    let rng = Rng.create seed in
    let inst = if isomorphic then Gni_full.no_instance rng n else Gni_full.yes_instance rng n in
    let params = Gni_full.params_for ~repetitions:reps ~seed inst in
    Printf.printf "instance: two %d-vertex graphs, |Aut(G0)| = %d, isomorphic = %b, |S| = %d\n" n
      (List.length (Lazy.force inst.Gni_full.aut0))
      (Iso.are_isomorphic inst.Gni_full.g0 inst.Gni_full.g1)
      (Array.length (Lazy.force inst.Gni_full.candidates));
    let exec s = Gni_full.run ~params ~seed:s inst Gni_full.honest in
    if trials > 0 then report_estimate "acceptance" (Stats.acceptance_ci ~trials exec)
    else report (exec seed)
  in
  let doc = "Unrestricted GNI (automorphism compensation) — works on symmetric graphs." in
  Cmd.v (Cmd.info "gni-full" ~doc) Term.(const run $ seed_t $ n_t 6 $ iso_t $ reps_t $ trials_t)

(* --- gni-induced ------------------------------------------------------------------- *)

let gni_induced_cmd =
  let iso_t =
    Arg.(value & flag & info [ "isomorphic" ] ~doc:"Plant two copies of the same side (NO instance).")
  in
  let reps_t =
    Arg.(value & opt int 300 & info [ "repetitions" ] ~doc:"Parallel repetitions for amplification.")
  in
  let run seed n isomorphic reps trials =
    let rng = Rng.create seed in
    let inst =
      if isomorphic then Gni_induced.no_instance rng n else Gni_induced.yes_instance rng n
    in
    let params = Gni_induced.params_for ~repetitions:reps ~seed inst in
    Printf.printf
      "instance: %d-node network, marked classes of %d; induced subgraphs isomorphic = %b; |S| = %d\n"
      n inst.Gni_induced.k
      (Iso.are_isomorphic inst.Gni_induced.h0 inst.Gni_induced.h1)
      (Array.length (Lazy.force inst.Gni_induced.candidates));
    let exec s = Gni_induced.run ~params ~seed:s inst Gni_induced.honest in
    if trials > 0 then report_estimate "acceptance" (Stats.acceptance_ci ~trials exec)
    else report (exec seed)
  in
  let doc = "Marked-subgraph GNI (Section 2.3): induced 0-class vs 1-class subgraphs." in
  Cmd.v (Cmd.info "gni-induced" ~doc) Term.(const run $ seed_t $ n_t 10 $ iso_t $ reps_t $ trials_t)

(* --- lcp ------------------------------------------------------------------------- *)

let lcp_cmd =
  let run seed n =
    let rng = Rng.create seed in
    let g = Family.random_symmetric rng n in
    (match Pls.Lcp_sym.honest g with
    | Some advice ->
      let v = Pls.Lcp_sym.verify g advice in
      Printf.printf "LCP for Sym on %d nodes: %s, %d advice bits per node (Theta(n^2))\n" n
        (if v.Pls.accepted then "verified" else "REJECTED")
        v.Pls.advice_bits_per_node
    | None -> print_endline "no advice (graph asymmetric)");
    let o = Sym_dmam.run ~seed g Sym_dmam.honest in
    Printf.printf "Protocol 1 on the same instance: %d bits per node — %.0fx less\n"
      o.Outcome.max_bits_per_node
      (float_of_int (Pls.Lcp_sym.advice_bits g) /. float_of_int o.Outcome.max_bits_per_node)
  in
  let doc = "The distributed-NP baseline (locally checkable proof) vs Protocol 1." in
  Cmd.v (Cmd.info "lcp" ~doc) Term.(const run $ seed_t $ n_t 24)

(* --- lowerbound -------------------------------------------------------------------- *)

let lowerbound_cmd =
  let run n =
    let module P = Ids_lowerbound.Packing in
    Printf.printf "n = %d\n" n;
    Printf.printf "log2 |F(n)|            = %.0f\n" (P.log2_family_size n);
    Printf.printf "Theorem 1.4 floor L    = %d bits\n" (P.min_protocol_length n);
    Printf.printf "log2 (packing bound 5^d) at d = 2^(2^L): L=3 -> %.0f, L=4 -> %.0f\n"
      (P.log2_packing_bound ~d:(1 lsl 8))
      (P.log2_packing_bound ~d:(1 lsl 16))
  in
  let doc = "The Omega(log log n) packing lower bound of Theorem 1.4." in
  Cmd.v (Cmd.info "lowerbound" ~doc) Term.(const run $ n_t 1_000_000)

let main_cmd =
  let doc = "Interactive distributed proofs (Kol-Oshman-Saxena, PODC 2018)" in
  let info = Cmd.info "ids-demo" ~version:"1.0.0" ~doc in
  Cmd.group info [ sym_cmd; sym_dam_cmd; dsym_cmd; gni_cmd; gni_full_cmd; gni_induced_cmd; lcp_cmd; lowerbound_cmd ]

let () = exit (Cmd.eval main_cmd)
