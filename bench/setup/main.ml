(* Benchmark for the setup path: the per-trial cost of drawing protocol
   parameters, before any round runs.

   Two comparisons, both against reference implementations kept in-tree:

   - prime search over each protocol's interval: the sieve-gated pipeline
     ([Prime.random_prime_in]) against the pre-sieve reference
     ([Prime.random_prime_in_reference]). The two are draw-for-draw
     identical, so every timed pair is also cross-checked to return the
     same prime — the benchmark doubles as the bit-identity oracle at
     full production sizes.
   - end-to-end dSym trial setup at n = 24 (size-53 graph): params + sigma
     + spanning tree, reference recomputation versus the gated search plus
     the {!Precomp} memos.

   Full run:   dune exec bench/setup/main.exe         (writes BENCH_setup.json,
               asserts the speedup targets: >= 3x prime search on the dSym
               n=24 interval, >= 2x end-to-end dSym setup)
   Smoke run:  dune exec bench/setup/main.exe -- --smoke
               (small rep counts, cross-checks only; wired into @runtest-fast) *)

module Nat = Ids_bignum.Nat
module Rng = Ids_bignum.Rng
module Prime = Ids_bignum.Prime
module Graph = Ids_graph.Graph
module Family = Ids_graph.Family
module Spanning_tree = Ids_graph.Spanning_tree
module Obs = Ids_obs.Obs
module Dsym = Ids_proof.Dsym
module Precomp = Ids_proof.Precomp

type prime_row = {
  range : string;
  bits : int;
  reps : int;
  reference_us : float;
  gated_us : float;
  speedup : float;
}

let time_us_once reps f =
  let t0 = Unix.gettimeofday () in
  for i = 0 to reps - 1 do
    ignore (Sys.opaque_identity (f i))
  done;
  (Unix.gettimeofday () -. t0) *. 1e6 /. float_of_int reps

(* Best of three windows: a single scheduler blip or major-GC slice in a
   tens-of-milliseconds window skews one side of a ratio by double-digit
   percents, which matters to the speedup floors below. The minimum is
   the standard microbenchmark answer. *)
let time_us reps f =
  min (time_us_once reps f) (min (time_us_once reps f) (time_us_once reps f))

let seed_base = 7000

(* The protocol intervals: dSym / symDMAM draw from [10 s^3, 100 s^3] (s =
   graph size; s = 53 is dSym at n = 24), GNI from [4 n!, 8 n!], RPLS from
   [4 n^4, 8 n^4], symDAM from [10 n^(n+2), 100 n^(n+2)]. *)
let intervals =
  let cube s = s * s * s in
  let int_range name lo hi = (name, Nat.of_int lo, Nat.of_int hi) in
  let sym_dam_range n =
    let bound = Nat.pow (Nat.of_int n) (n + 2) in
    (Printf.sprintf "sym_dam_n%d" n, Nat.mul_int bound 10, Nat.mul_int bound 100)
  in
  [ int_range "dsym_s17" (10 * cube 17) (100 * cube 17);
    int_range "dsym_s53" (10 * cube 53) (100 * cube 53);
    int_range "sym_dmam_n16" (10 * cube 16) (100 * cube 16);
    int_range "gni_f40320" (4 * 40320) (8 * 40320);
    int_range "rpls_n6" (4 * 1296) (8 * 1296);
    sym_dam_range 10;
    sym_dam_range 24;
    (* n = 32 is past the old 26-bit engine's practical wall (a ~177-bit
       field prime, where the legacy pow made each Miller-Rabin round the
       dominant cost): the row is the wide-limb migration's witness that
       the sym_dam interval keeps scaling. *)
    sym_dam_range 32
  ]

let bench_interval ~reps (range, lo, hi) =
  (* Cross-check first: same prime for every seed. *)
  for i = 0 to reps - 1 do
    let seed = seed_base + i in
    let p_ref = Prime.random_prime_in_reference (Rng.create seed) lo hi in
    let p_gated = Prime.random_prime_in (Rng.create seed) lo hi in
    if not (Nat.equal p_ref p_gated) then (
      Printf.eprintf "FAIL: gated prime search disagrees with reference on %s seed %d\n" range seed;
      exit 1)
  done;
  let reference_us =
    time_us reps (fun i -> Prime.random_prime_in_reference (Rng.create (seed_base + i)) lo hi)
  in
  let gated_us = time_us reps (fun i -> Prime.random_prime_in (Rng.create (seed_base + i)) lo hi) in
  { range; bits = Nat.bit_length hi; reps; reference_us; gated_us;
    speedup = reference_us /. gated_us }

(* End-to-end dSym setup at n = 24: everything the engine computes per trial
   before the first message — field prime, embedding permutation, honest
   prover's spanning tree. *)
let dsym_n = 24
let dsym_r = 2
let dsym_g = Family.dsym_graph (Graph.cycle dsym_n) dsym_r
let dsym_inst = Dsym.make_instance ~n:dsym_n ~r:dsym_r dsym_g

let dsym_reference_setup seed =
  let size = Graph.n dsym_g in
  let rng = Rng.create (seed lxor 0x3d5) in
  let lo = 10 * size * size * size and hi = 100 * size * size * size in
  let p = Nat.to_int (Prime.random_prime_in_reference rng (Nat.of_int lo) (Nat.of_int hi)) in
  let sigma = Family.dsym_sigma ~n:dsym_n ~r:dsym_r in
  let tree = Spanning_tree.bfs dsym_g 0 in
  (p, sigma, tree)

let dsym_gated_setup seed =
  let params = Dsym.params_for ~seed dsym_inst in
  let sigma = Precomp.dsym_sigma ~n:dsym_n ~r:dsym_r in
  let tree = Precomp.tree dsym_g 0 in
  (params.Dsym.p, sigma, tree)

let bench_dsym_setup ~reps =
  for i = 0 to reps - 1 do
    let seed = seed_base + i in
    let p_ref, _, _ = dsym_reference_setup seed in
    let p_gated, _, _ = dsym_gated_setup seed in
    if p_ref <> p_gated then (
      Printf.eprintf "FAIL: dSym setup prime disagrees with reference at seed %d\n" seed;
      exit 1)
  done;
  let reference_us = time_us reps (fun i -> dsym_reference_setup (seed_base + i)) in
  let gated_us = time_us reps (fun i -> dsym_gated_setup (seed_base + i)) in
  (reference_us, gated_us, reference_us /. gated_us)

(* One traced pass so the report carries the pipeline's own accounting:
   sieve rejections vs Miller-Rabin rounds, memo hits vs misses. *)
let counter_totals () =
  Obs.reset ();
  Obs.set_enabled true;
  let _, lo, hi = List.nth intervals 1 (* dsym_s53 *) in
  ignore (Prime.random_prime_in (Rng.create seed_base) lo hi);
  (* A fresh copy gets a fresh uid, so the first tree call is a real miss. *)
  let g = Graph.copy dsym_g in
  for _ = 1 to 100 do
    ignore (Precomp.tree g 0);
    ignore (Precomp.dsym_sigma ~n:dsym_n ~r:dsym_r)
  done;
  let snap = Obs.snapshot () in
  Obs.set_enabled false;
  let keep c =
    let n = c.Obs.cname in
    String.length n >= 5 && (String.sub n 0 5 = "prime" || String.sub n 0 4 = "memo")
  in
  List.filter_map
    (fun c -> if keep c then Some (c.Obs.cname, c.Obs.total) else None)
    snap.Obs.counters

let () =
  let smoke = ref false and out = ref "BENCH_setup.json" in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest -> smoke := true; parse rest
    | "-o" :: path :: rest -> out := path; parse rest
    | arg :: _ -> Printf.eprintf "unknown argument %s\n" arg; exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let reps = if !smoke then 2 else 40 in
  let rows = List.map (bench_interval ~reps) intervals in
  let setup_ref, setup_gated, setup_speedup = bench_dsym_setup ~reps in
  let counters = counter_totals () in
  Printf.printf "%14s %5s %5s | %14s %12s | %8s\n" "interval" "bits" "reps" "reference (us)"
    "gated (us)" "speedup";
  List.iter
    (fun r ->
      Printf.printf "%14s %5d %5d | %14.1f %12.1f | %7.2fx\n" r.range r.bits r.reps
        r.reference_us r.gated_us r.speedup)
    rows;
  Printf.printf "\ndSym n=%d end-to-end setup: reference %.1f us, gated %.1f us, %.2fx\n" dsym_n
    setup_ref setup_gated setup_speedup;
  Printf.printf "\ncounters (one gated dsym_s53 search + 100 memoized setups):\n";
  List.iter (fun (name, total) -> Printf.printf "  %-22s %d\n" name total) counters;
  (* Timing assertions only in full mode; smoke reps are too small to be
     stable, there the cross-checks above are the point. *)
  if not !smoke then begin
    let headline = List.find (fun r -> r.range = "dsym_s53") rows in
    if headline.speedup < 3.0 then (
      Printf.eprintf "FAIL: dsym_s53 prime-search speedup %.2fx below the 3x target\n"
        headline.speedup;
      exit 1);
    if setup_speedup < 2.0 then (
      Printf.eprintf "FAIL: dSym n=24 setup speedup %.2fx below the 2x target\n" setup_speedup;
      exit 1)
  end;
  let json_row r =
    Printf.sprintf
      "    {\"range\": \"%s\", \"bits\": %d, \"reps\": %d, \"reference_us\": %.2f, \"gated_us\": %.2f, \"speedup\": %.2f}"
      r.range r.bits r.reps r.reference_us r.gated_us r.speedup
  in
  let json_counter (name, total) = Printf.sprintf "    {\"name\": \"%s\", \"total\": %d}" name total in
  let oc = open_out !out in
  Printf.fprintf oc
    "{\n  \"schema_version\": 1,\n  \"mode\": \"%s\",\n  \"prime_search\": [\n%s\n  ],\n  \"dsym_setup\": {\"n\": %d, \"size\": %d, \"reps\": %d, \"reference_us\": %.2f, \"gated_us\": %.2f, \"speedup\": %.2f},\n  \"counters\": [\n%s\n  ]\n}\n"
    (if !smoke then "smoke" else "full")
    (String.concat ",\n" (List.map json_row rows))
    dsym_n (Graph.n dsym_g) reps setup_ref setup_gated setup_speedup
    (String.concat ",\n" (List.map json_counter counters));
  close_out oc;
  Printf.printf "\nwrote %s\n" !out
