(* Million-node scale benchmark (EXPERIMENTS.md E19).

   Builds a degree-4 random-circulant expander on the sparse backend and
   runs the two Θ(log n)-advice protocols end to end: the spanning-tree
   proof labeling scheme (Pls.Tree) and the Section 4 tree-aggregable
   eps-API hash over streamed network views (Apihash). Reports nodes/sec
   per protocol and the process's peak RSS, and emits BENCH_scale.json.

   --smoke (n = 10^4, wired into @runtest-fast) additionally asserts the
   scale path's two contracts: peak RSS stays under a fixed bound (an
   O(n^2)-resident regression at n = 10^4 blows through it), and dense- vs
   sparse-backend runs of both protocols are bit-identical. *)

module Rng = Ids_bignum.Rng
module Graph = Ids_graph.Graph
module Family = Ids_graph.Family
module Graph_io = Ids_graph.Graph_io
module Pls = Ids_proof.Pls
module Apihash = Ids_proof.Apihash
module Outcome = Ids_proof.Outcome

let default_n = 1_000_000
let smoke_n = 10_000
let degree = 4
let graph_seed = 0x5ca1e
let run_seed = 11

(* Peak resident set in bytes: VmHWM from /proc/self/status (Linux), else
   the GC's top heap size — an underestimate, but monotone in the same
   regressions the smoke bound exists to catch. *)
let peak_rss_bytes () =
  let from_proc () =
    let ic = open_in "/proc/self/status" in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec scan () =
          match input_line ic with
          | line ->
            (try Scanf.sscanf line "VmHWM: %d kB" (fun kb -> Some (kb * 1024))
             with Scanf.Scan_failure _ | Failure _ | End_of_file -> scan ())
          | exception End_of_file -> None
        in
        scan ())
  in
  let fallback () =
    let st = Gc.quick_stat () in
    st.Gc.top_heap_words * (Sys.word_size / 8)
  in
  match (try from_proc () with Sys_error _ -> None) with
  | Some b -> b
  | None -> fallback ()

let timed f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

type proto_result = { seconds : float; nodes_per_sec : float; accepted : bool; bits_per_node : int }

let run_pls g =
  let n = Graph.n g in
  let (verdict : Pls.verdict), seconds =
    timed (fun () ->
        let advice = Pls.Tree.honest g 0 in
        Pls.Tree.verify g advice)
  in
  { seconds;
    nodes_per_sec = float_of_int n /. seconds;
    accepted = verdict.Pls.accepted;
    bits_per_node = verdict.Pls.advice_bits_per_node
  }

let run_apihash g =
  let n = Graph.n g in
  let (out : Outcome.t), seconds = timed (fun () -> Apihash.run ~seed:run_seed ~root:0 g) in
  { seconds;
    nodes_per_sec = float_of_int n /. seconds;
    accepted = out.Outcome.accepted;
    bits_per_node = out.Outcome.max_bits_per_node
  }

let check name cond = if not cond then begin Printf.eprintf "FAIL: %s\n%!" name; exit 1 end

(* Dense and sparse backends must produce the same graph and bit-identical
   protocol outcomes (same seeds, same draws). Run at a size where the
   dense backend is still cheap. *)
let backend_equality_smoke () =
  let n = 600 in
  let build repr = Family.expander ~repr (Rng.create graph_seed) ~n ~degree in
  let gd = build Graph.Dense and gs = build Graph.Sparse in
  check "smoke: dense/sparse expander Graph.equal" (Graph.equal gd gs);
  let pd = run_pls gd and ps = run_pls gs in
  check "smoke: PLS accepts on both backends" (pd.accepted && ps.accepted);
  check "smoke: PLS bits agree across backends" (pd.bits_per_node = ps.bits_per_node);
  let od = Apihash.run ~seed:run_seed ~root:0 gd and os = Apihash.run ~seed:run_seed ~root:0 gs in
  check "smoke: apihash outcome bit-identical across backends" (od = os);
  check "smoke: apihash accepts" od.Outcome.accepted

let emit_json path ~n ~smoke ~graph_seconds ~sparse6_bytes ~pls ~api ~(params : Apihash.params)
    ~peak_rss =
  let buf = Buffer.create 1024 in
  let proto name r =
    Printf.sprintf
      "\"%s\": {\"seconds\": %.3f, \"nodes_per_sec\": %.0f, \"accepted\": %b, \"bits_per_node\": %d}"
      name r.seconds r.nodes_per_sec r.accepted r.bits_per_node
  in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"bench\": \"scale\", \"smoke\": %b,\n" smoke);
  Buffer.add_string buf
    (Printf.sprintf "  \"n\": %d, \"degree\": %d, \"repr\": \"sparse\", \"graph_seed\": %d, \"run_seed\": %d,\n"
       n degree graph_seed run_seed);
  Buffer.add_string buf
    (Printf.sprintf "  \"graph_build_seconds\": %.3f, \"sparse6_bytes\": %d,\n" graph_seconds sparse6_bytes);
  Buffer.add_string buf (Printf.sprintf "  %s,\n" (proto "pls_tree" pls));
  Buffer.add_string buf (Printf.sprintf "  %s,\n" (proto "apihash" api));
  Buffer.add_string buf
    (Printf.sprintf "  \"apihash_q\": %d, \"apihash_copies\": %d,\n" params.Apihash.q
       params.Apihash.copies);
  Buffer.add_string buf (Printf.sprintf "  \"peak_rss_mb\": %.1f\n" (peak_rss /. 1048576.));
  Buffer.add_string buf "}\n";
  let s = Buffer.contents buf in
  let oc = open_out path in
  output_string oc s;
  close_out oc;
  Printf.printf "wrote %s\n%!" path

let () =
  let smoke = ref false and out_path = ref "BENCH_scale.json" and n = ref 0 in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
      smoke := true;
      parse rest
    | "-o" :: path :: rest ->
      out_path := path;
      parse rest
    | "-n" :: v :: rest ->
      n := int_of_string v;
      parse rest
    | arg :: _ ->
      Printf.eprintf "usage: %s [--smoke] [-o PATH] [-n N]\n" Sys.argv.(0);
      ignore arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let n = if !n > 0 then !n else if !smoke then smoke_n else default_n in
  Printf.printf "scale bench: n = %d, degree = %d (%s)\n%!" n degree
    (if !smoke then "smoke" else "full");
  let g, graph_seconds =
    timed (fun () -> Family.expander ~repr:Graph.Sparse (Rng.create graph_seed) ~n ~degree)
  in
  Printf.printf "  graph build         %8.3f s\n%!" graph_seconds;
  let s6, s6_seconds = timed (fun () -> Graph_io.to_sparse6 g) in
  let sparse6_bytes = String.length s6 in
  Printf.printf "  sparse6 encode      %8.3f s  (%d bytes)\n%!" s6_seconds sparse6_bytes;
  let pls = run_pls g in
  Printf.printf "  pls_tree            %8.3f s  (%.0f nodes/s, %d bits/node, %s)\n%!" pls.seconds
    pls.nodes_per_sec pls.bits_per_node
    (if pls.accepted then "ACCEPT" else "REJECT");
  let api = run_apihash g in
  Printf.printf "  apihash             %8.3f s  (%.0f nodes/s, %d bits/node, %s)\n%!" api.seconds
    api.nodes_per_sec api.bits_per_node
    (if api.accepted then "ACCEPT" else "REJECT");
  let params = Apihash.params_for ~seed:run_seed g in
  let peak_rss = float_of_int (peak_rss_bytes ()) in
  Printf.printf "  peak RSS            %8.1f MB\n%!" (peak_rss /. 1048576.);
  check "pls_tree accepts" pls.accepted;
  check "apihash accepts" api.accepted;
  check "sparse6 round-trips" (Graph.equal g (Graph_io.of_sparse6 s6));
  if !smoke then begin
    (* An O(n²)-resident regression at n = 10⁴ needs ~100 MB for one dense
       structure alone; the streamed sparse path stays far below this. *)
    let bound_mb = 300. in
    check
      (Printf.sprintf "smoke: peak RSS %.1f MB under %.0f MB bound" (peak_rss /. 1048576.) bound_mb)
      (peak_rss /. 1048576. < bound_mb);
    backend_equality_smoke ();
    Printf.printf "  backend equality    OK (dense/sparse bit-identical)\n%!"
  end;
  emit_json !out_path ~n ~smoke:!smoke ~graph_seconds ~sparse6_bytes ~pls ~api ~params ~peak_rss
