(* E17: the empirical soundness frontier.

   The soundness theorems bound the best cheating prover analytically; this
   experiment measures how close any strategy we can *find* comes to those
   bounds. Per protocol (sym_dmam, sym_dam, dsym, gni), on the fixed NO
   instance of Strategy.frontier_cases:

   - run the Search engine (coordinate descent + (mu+lambda) refinement,
     SPRT screening) over the declarative cheat grid with the fault axis
     frozen to "none" — the paper-model frontier;
   - evaluate every hand-written registry cheater on the same instance at
     the same budget — the frontier must dominate the registry (asserted);
   - re-evaluate the best-found strategy under each fault level — the
     fault-sensitivity row (crash-vacuous is the PR2 leak).

   Every evaluation is an Engine.run / Engine.run_sprt over seeded trials,
   so the whole report is bit-identical across IDS_DOMAINS; trial budgets
   are fixed (deliberately NOT scaled by IDS_TRIALS_SCALE) so the committed
   BENCH_frontier.json is reproducible by `make frontier` anywhere.

   Full run:   dune exec bench/frontier/main.exe    (writes BENCH_frontier.json)
   Smoke run:  dune exec bench/frontier/main.exe -- --smoke
               (tiny budgets, same assertions; wired into @runtest-fast) *)

module Engine = Ids_engine.Engine
module Search = Ids_engine.Search
module Runlog = Ids_engine.Runlog
module Strategy = Ids_proof.Strategy

type config = {
  mode : string;
  trials_for : string -> int;
  passes : int;
  generations : int;
  screen_trials : int;
}

let full_config =
  { mode = "full";
    (* Cheap int-field protocols get deep budgets (their frontiers sit at
       ~1/p); the Nat-field sym_dam trial is ~100x dearer, and one gni trial
       scans 2 n! candidate tables. *)
    trials_for =
      (function "sym_dmam" -> 16384 | "dsym" -> 16384 | "sym_dam" -> 512 | _ -> 1024);
    passes = 2;
    generations = 3;
    screen_trials = 96
  }

let smoke_config =
  { mode = "smoke";
    trials_for = (fun _ -> 32);
    passes = 1;
    generations = 1;
    screen_trials = 8
  }

type row = {
  case : Strategy.frontier_case;
  trials : int;
  best : Search.outcome;
  best_strategy : Strategy.t;
  stats : Search.stats;
  registry : (string * Engine.estimate) list;
  faults : (string * Engine.estimate) list;
}

let run_case cfg (case : Strategy.frontier_case) =
  let trials = cfg.trials_for case.Strategy.label in
  let fault_axis = Strategy.fault_axis case.Strategy.protocol in
  let result =
    Search.run ~frozen:[ (fault_axis, 0) ] ~passes:cfg.passes ~generations:cfg.generations
      ~screen_trials:cfg.screen_trials ~full_trials:trials ~space:case.Strategy.space
      case.Strategy.trial
  in
  let best = result.Search.best in
  let best_strategy = case.Strategy.strategy_of best.Search.point in
  let registry =
    List.map
      (fun (name, trial) -> (name, Engine.run ~trials trial))
      case.Strategy.registry
  in
  (* Fault sensitivity of the best-found strategy: same point, fault axis
     swept over its levels. *)
  let fault_levels = (Strategy.levels case.Strategy.protocol).(fault_axis) in
  let faults =
    Array.to_list
      (Array.mapi
         (fun level label ->
           if level = 0 then (label, best.Search.estimate)
           else begin
             let point = Array.copy best.Search.point in
             point.(fault_axis) <- level;
             (label, Engine.run ~trials (case.Strategy.trial point))
           end)
         fault_levels)
  in
  { case; trials; best; best_strategy; stats = result.Search.stats; registry; faults }

let registry_best row =
  List.fold_left
    (fun acc (name, (e : Engine.estimate)) ->
      match acc with
      | Some (_, (b : Engine.estimate)) when b.Engine.rate >= e.Engine.rate -> acc
      | _ -> Some (name, e))
    None row.registry

let check_dominates row =
  match registry_best row with
  | None -> ()
  | Some (name, e) ->
    if row.best.Search.estimate.Engine.rate < e.Engine.rate then begin
      Printf.eprintf "FAIL: %s search best %.6f below registry %s at %.6f\n"
        row.case.Strategy.label row.best.Search.estimate.Engine.rate name e.Engine.rate;
      exit 1
    end

let print_row row =
  let e = row.best.Search.estimate in
  Printf.printf "%s (n=%d, %d trials/point): bound %s = %.3e\n" row.case.Strategy.label
    row.case.Strategy.n row.trials row.case.Strategy.bound_label row.case.Strategy.bound;
  Printf.printf "  best   %-60s rate %.6f [%.6f, %.6f] (%d/%d)\n"
    (Strategy.encode row.best_strategy) e.Engine.rate e.Engine.ci_low e.Engine.ci_high
    e.Engine.accepts e.Engine.trials;
  Printf.printf "  search %s\n" (Format.asprintf "%a" Search.pp_stats row.stats);
  List.iter
    (fun (name, (r : Engine.estimate)) ->
      Printf.printf "  registry %-24s rate %.6f [%.6f, %.6f] (%d/%d)\n" name r.Engine.rate
        r.Engine.ci_low r.Engine.ci_high r.Engine.accepts r.Engine.trials)
    row.registry;
  List.iter
    (fun (label, (r : Engine.estimate)) ->
      Printf.printf "  fault %-14s rate %.6f [%.6f, %.6f] (%d/%d)\n" label r.Engine.rate
        r.Engine.ci_low r.Engine.ci_high r.Engine.accepts r.Engine.trials)
    row.faults;
  print_newline ()

let log_row row =
  let log prover (e : Engine.estimate) fault =
    Runlog.log ?fault ~protocol:row.case.Strategy.label ~n:row.case.Strategy.n ~prover e
  in
  log (Strategy.encode row.best_strategy) row.best.Search.estimate None;
  List.iter (fun (name, e) -> log ("adversary:" ^ name) e None) row.registry;
  List.iter
    (fun (label, e) -> log (Strategy.encode row.best_strategy) e (Some label))
    row.faults

let est_fields (e : Engine.estimate) =
  Printf.sprintf
    "\"trials\": %d, \"accepts\": %d, \"rate\": %.8f, \"ci_low\": %.8f, \"ci_high\": %.8f"
    e.Engine.trials e.Engine.accepts e.Engine.rate e.Engine.ci_low e.Engine.ci_high

let json_row row =
  let e = row.best.Search.estimate in
  let registry =
    String.concat ",\n"
      (List.map
         (fun (name, r) -> Printf.sprintf "        {\"strategy\": \"%s\", %s}" name (est_fields r))
         row.registry)
  in
  let faults =
    String.concat ",\n"
      (List.map
         (fun (label, r) -> Printf.sprintf "        {\"fault\": \"%s\", %s}" label (est_fields r))
         row.faults)
  in
  let s = row.stats in
  Printf.sprintf
    "    {\n\
    \      \"protocol\": \"%s\",\n\
    \      \"n\": %d,\n\
    \      \"bound\": %.8e,\n\
    \      \"bound_label\": \"%s\",\n\
    \      \"full_trials\": %d,\n\
    \      \"best\": {\"strategy\": \"%s\", %s},\n\
    \      \"search\": {\"evaluated\": %d, \"screened_out\": %d, \"cache_hits\": %d, \"trials_spent\": %d},\n\
    \      \"registry\": [\n%s\n      ],\n\
    \      \"fault_sensitivity\": [\n%s\n      ]\n\
    \    }"
    row.case.Strategy.label row.case.Strategy.n row.case.Strategy.bound
    row.case.Strategy.bound_label row.trials
    (Strategy.encode row.best_strategy)
    (est_fields e) s.Search.evaluated s.Search.screened_out s.Search.cache_hits
    s.Search.trials_spent registry faults

let () =
  let smoke = ref false and out = ref "BENCH_frontier.json" in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
      smoke := true;
      parse rest
    | "-o" :: path :: rest ->
      out := path;
      parse rest
    | arg :: _ ->
      Printf.eprintf "unknown argument %s\n" arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let cfg = if !smoke then smoke_config else full_config in
  Runlog.open_from_env ();
  let rows = List.map (run_case cfg) (Strategy.frontier_cases ()) in
  List.iter print_row rows;
  List.iter check_dominates rows;
  List.iter log_row rows;
  Runlog.close ();
  let oc = open_out !out in
  Printf.fprintf oc "{\n  \"schema_version\": 1,\n  \"mode\": \"%s\",\n  \"protocols\": [\n%s\n  ]\n}\n"
    cfg.mode
    (String.concat ",\n" (List.map json_row rows));
  close_out oc;
  Printf.printf "wrote %s\n" !out
