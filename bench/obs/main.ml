(* Pins the "zero-cost when disabled" contract of the tracing layer
   (lib/obs): with tracing off, every instrumentation point is a flag test
   plus at most a tail call, so the full set of points executed by one
   Protocol 2 run must cost under 2% of that run.

   The bound is computed from measurements, not assumed: the disabled-path
   cost of each primitive is timed in a tight loop, the number of
   instrumentation calls in one run is counted exactly by running once with
   tracing ON (Obs.ops_count), and the product is compared to the measured
   wall time of the disabled-path run. Exits nonzero when the 2% budget is
   blown.

   Run:          dune exec bench/obs/main.exe
   Fast smoke:   dune exec bench/obs/main.exe -- --smoke   (runtest-fast) *)

module Obs = Ids_obs.Obs
module Family = Ids_graph.Family
module Rng = Ids_bignum.Rng
open Ids_proof

let budget_pct = 2.0

let time_ns f =
  let t0 = Obs.now_ns () in
  f ();
  Obs.now_ns () - t0

(* ns per call of [f], amortized over [iters] calls. *)
let per_op iters f =
  let loop () =
    for _ = 1 to iters do
      f ()
    done
  in
  loop () (* warm up *);
  float_of_int (time_ns loop) /. float_of_int iters

let () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  let iters = if smoke then 200_000 else 5_000_000 in
  let hot_reps = if smoke then 3 else 12 in

  (* The protocol instance: Protocol 2 (Sym dAM) is the hot path the 2%
     budget is stated against — bignum field, Montgomery pows, per-node
     charges, every instrumentation point in the codebase on its path. *)
  let rng = Rng.create 42 in
  let g = Family.random_symmetric rng 16 in
  let params = Sym_dam.params_for ~seed:5 g in
  let run seed = Sym_dam.run ~params ~seed g Sym_dam.honest in

  Obs.set_enabled false;

  (* Disabled-path primitive costs. *)
  let probe = Obs.Counter.make "bench.obs.probe" in
  let hprobe = Obs.Histo.make "bench.obs.hprobe" in
  let body () = ignore (Sys.opaque_identity 0) in
  let span_ns = per_op iters (fun () -> Obs.span ~round:1 ~node:1 "bench.obs.span" body) in
  let add_ns = per_op iters (fun () -> Obs.Counter.add_cell probe ~round:1 ~node:1 1) in
  let obs_ns = per_op iters (fun () -> Obs.Histo.observe hprobe 7) in
  let bump_ns = Float.max add_ns obs_ns in

  (* Exact instrumentation-call count for one run, measured with tracing
     on: every span, counter add, and histogram observation is one call
     whether or not tracing records it. *)
  Obs.set_enabled true;
  Obs.reset ();
  let traced = run 1 in
  let spans = List.length (Obs.spans ()) in
  let calls = Obs.ops_count () in
  Obs.reset ();
  Obs.set_enabled false;

  (* The hot path itself, disabled path active (the production default). *)
  let hot_ns =
    let best = ref max_float in
    for rep = 1 to hot_reps do
      let ns = time_ns (fun () -> ignore (Sys.opaque_identity (run (1000 + rep)))) in
      if float_of_int ns < !best then best := float_of_int ns
    done;
    !best
  in
  let untraced = run 1 in
  if untraced.Outcome.accepted <> traced.Outcome.accepted
     || untraced.Outcome.total_bits <> traced.Outcome.total_bits
  then begin
    prerr_endline "FAIL: tracing changed a protocol outcome (same seed, different result)";
    exit 1
  end;

  (* Every call priced at the costliest primitive (the span, which has two
     optional-argument boxes at the call site on top of the flag test). *)
  let per_call = Float.max span_ns bump_ns in
  let overhead_ns = float_of_int calls *. per_call in
  let pct = 100. *. overhead_ns /. hot_ns in
  Printf.printf "disabled-path primitives: span %.2f ns, counter add %.2f ns, histo observe %.2f ns\n"
    span_ns add_ns obs_ns;
  Printf.printf "one Protocol 2 run (n = 16): %d instrumentation calls (%d spans), %.3f ms wall\n"
    calls spans (hot_ns /. 1e6);
  Printf.printf "disabled instrumentation bound: %.1f us = %.3f%% of the run (budget %.1f%%)\n"
    (overhead_ns /. 1e3) pct budget_pct;
  if pct > budget_pct then begin
    Printf.eprintf "FAIL: disabled tracing costs %.3f%% > %.1f%% of the Protocol 2 hot path\n" pct
      budget_pct;
    exit 1
  end;
  print_endline "OK: disabled tracing is within budget"
