(* The experiment harness: regenerates every table of EXPERIMENTS.md (the
   empirical reproduction of the paper's theorems, E1..E8) and finishes with
   Bechamel timing benchmarks, one Test.make per experiment's hot path.

   Run everything:        dune exec bench/main.exe
   Run one experiment:    dune exec bench/main.exe -- e3
   Skip the timing pass:  dune exec bench/main.exe -- tables *)

module Graph = Ids_graph.Graph
module Family = Ids_graph.Family
module Iso = Ids_graph.Iso
module Perm = Ids_graph.Perm
module Rng = Ids_bignum.Rng
module Bits = Ids_network.Bits
module Engine = Ids_engine.Engine
module Runlog = Ids_engine.Runlog
module Obs = Ids_obs.Obs
module Trace = Ids_obs.Trace
open Ids_proof

let header title = Printf.printf "\n=== %s ===\n\n" title

(* Every estimate goes through the parallel engine (worker count from
   IDS_DOMAINS, default all cores). Base trial counts are multiplied by
   IDS_TRIALS_SCALE, default 4x the historical sequential budgets — the
   engine buys the extra statistical power back in wall time. *)
let scaled trials = Engine.scaled_trials ~default_scale:4.0 trials

(* When tracing is on, each estimate's run-log record carries the metrics
   snapshot covering exactly its own trials. *)
let metrics_snapshot () = if Obs.enabled () then Some (Obs.snapshot_json (Obs.snapshot ())) else None

let est ~protocol ~n ~prover ~trials run =
  if Obs.enabled () then Obs.reset_metrics ();
  let e = Stats.acceptance_ci ~trials:(scaled trials) run in
  Runlog.log ?metrics:(metrics_snapshot ()) ~protocol ~n ~prover e;
  e

let rate_of est = est.Engine.rate

let ci est = Printf.sprintf "[%.3f,%.3f]" est.Engine.ci_low est.Engine.ci_high

(* --- E1: Theorem 1.1 — Sym in dMAM[O(log n)] ---------------------------------- *)

let e1 () =
  header "E1  Theorem 1.1: Sym in dMAM[O(log n)]  (Protocol 1)";
  Printf.printf "%6s | %9s %15s %9s %15s | %12s %12s | %10s %12s\n" "n" "YES acc" "YES 95% CI"
    "NO acc" "NO 95% CI" "bits/node" "16logn+28" "NO exact" "m/p bound";
  let rng = Rng.create 1 in
  List.iter
    (fun n ->
      let trials = if n <= 64 then 60 else 30 in
      let yes_g = Family.random_symmetric rng n in
      let no_g = Family.random_asymmetric rng n in
      let yes =
        est ~protocol:"sym_dmam" ~n ~prover:"honest" ~trials (fun seed ->
            Sym_dmam.run ~seed yes_g Sym_dmam.honest)
      in
      let no =
        est ~protocol:"sym_dmam" ~n ~prover:"random-perm" ~trials (fun seed ->
            Sym_dmam.run ~seed no_g Sym_dmam.adversary_random_perm)
      in
      let params = Sym_dmam.params_for ~seed:3 no_g in
      let exact =
        if n <= 16 then
          Printf.sprintf "%.5f"
            (Sym_dmam.acceptance_probability_exact params no_g (Perm.random_nonidentity rng n))
        else "-"
      in
      Printf.printf "%6d | %9.3f %15s %9.3f %15s | %12.1f %12d | %10s %12.5f\n" n (rate_of yes)
        (ci yes) (rate_of no) (ci no) yes.Engine.mean_bits
        ((16 * Bits.ceil_log2 n) + 28)
        exact
        (Ids_hash.Linear.collision_bound ~n ~p:params.Sym_dmam.p))
    [ 8; 16; 32; 64; 128 ];
  print_endline "\nShape: YES acceptance 1.0 (>2/3), NO ~0 (<1/3); bits/node tracks the O(log n) line."

(* --- E2: Theorem 1.3 — Sym in dAM[O(n log n)] ---------------------------------- *)

let e2 () =
  header "E2  Theorem 1.3: Sym in dAM[O(n log n)]  (Protocol 2, bignum prime ~ n^(n+2))";
  Printf.printf "%6s | %9s %15s %9s %15s | %12s %12s | %12s\n" "n" "YES acc" "YES 95% CI" "NO acc"
    "NO 95% CI" "bits/node" "~6nlogn" "p bits";
  let rng = Rng.create 2 in
  List.iter
    (fun n ->
      let trials = if n <= 12 then 20 else 10 in
      let yes_g = Family.random_symmetric rng n in
      let no_g = Family.random_asymmetric rng n in
      let params = Sym_dam.params_for ~seed:5 yes_g in
      let yes =
        est ~protocol:"sym_dam" ~n ~prover:"honest" ~trials (fun seed ->
            Sym_dam.run ~params ~seed yes_g Sym_dam.honest)
      in
      let no_params = Sym_dam.params_for ~seed:5 no_g in
      let no =
        est ~protocol:"sym_dam" ~n ~prover:"search" ~trials (fun seed ->
            Sym_dam.run ~params:no_params ~seed no_g Sym_dam.adversary_search)
      in
      Printf.printf "%6d | %9.3f %15s %9.3f %15s | %12.1f %12d | %12d\n" n (rate_of yes) (ci yes)
        (rate_of no) (ci no) yes.Engine.mean_bits
        (6 * n * Bits.ceil_log2 n)
        (Ids_bignum.Nat.bit_length params.Sym_dam.p))
    [ 6; 8; 12; 16; 20 ];
  print_endline "\nShape: cost grows ~ n log n (vs Protocol 1's log n); soundness via union bound over n^n maps."

(* --- E3: Theorem 1.2 / 3.6 — exponential separation ----------------------------- *)

let e3 () =
  header "E3  Theorem 1.2/3.6: DSym — dAM[O(log n)] vs Omega(n^2) distributed NP";
  Printf.printf "%6s %9s | %13s %13s %9s | %9s %9s\n" "side" "vertices" "LCP bits/node" "dAM bits/node"
    "ratio" "YES acc" "NO acc";
  let rng = Rng.create 3 in
  List.iter
    (fun n ->
      let r = 2 in
      let f = Family.random_asymmetric rng n in
      let inst = Dsym.make_instance ~n ~r (Family.dsym_graph f r) in
      let trials = if n <= 64 then 40 else 20 in
      let yes = est ~protocol:"dsym" ~n ~prover:"honest" ~trials (fun seed -> Dsym.run ~seed inst Dsym.honest) in
      let no =
        (* The perturbed instance is derived from the trial seed, never from
           a shared rng: trial functions must be pure in their seed for the
           parallel engine to be deterministic. *)
        est ~protocol:"dsym" ~n ~prover:"consistent" ~trials (fun seed ->
            let bad = Dsym.make_instance ~n ~r (Family.dsym_perturbed (Rng.create (31 + seed)) f r) in
            Dsym.run ~seed bad Dsym.adversary_consistent)
      in
      let lcp = Pls.Lcp_sym.advice_bits (Family.dsym_graph f r) in
      Printf.printf "%6d %9d | %13d %13.0f %8.0fx | %9.3f %9.3f\n" n
        ((2 * n) + (2 * r) + 1)
        lcp yes.Engine.mean_bits
        (float_of_int lcp /. yes.Engine.mean_bits)
        (rate_of yes) (rate_of no))
    [ 8; 16; 32; 64; 128 ];
  print_endline "\nShape: the ratio column grows ~ n^2/log n — the exponential separation in proof size."

(* --- E4: Theorem 1.4 — the Omega(log log n) packing lower bound ------------------ *)

let e4 () =
  header "E4  Theorem 1.4: packing lower bound for Sym (Section 3.4)";
  print_endline "Packing curve (log-space): family F(n) of asymmetric pairwise non-isomorphic graphs";
  Printf.printf "%14s | %16s | %14s\n" "n" "log2 |F(n)|" "min length L";
  List.iter
    (fun n ->
      match Ids_lowerbound.Packing.lower_bound_table [ n ] with
      | [ (_, logf, l) ] -> Printf.printf "%14d | %16.0f | %14d\n" n logf l
      | _ -> assert false)
    [ 10; 100; 1_000; 10_000; 1_000_000; 1_000_000_000; 1_000_000_000_000 ];
  print_endline "\nL grows like log log n: 5^(2^(2^L)) must exceed |F(n)| (Lemmas 3.11 + 3.12).";

  (* The executable toy rendering. *)
  let rng = Rng.create 4 in
  let fam = Array.of_list (Family.asymmetric_family rng ~n:6 ~size:6) in
  let module T = Ids_lowerbound.Toy_protocol in
  let lmin = T.min_correct_length fam in
  Printf.printf "\nToy fingerprint protocol over |F| = %d asymmetric 6-vertex sides:\n" (Array.length fam);
  let t = T.make fam ~length:lmin in
  Printf.printf "  L = %d: correct = %b (Lemma 3.11 check: min pairwise L1 = %.2f >= 2/3)\n" lmin
    (T.correct t)
    (let m = T.pairwise_l1 t in
     let best = ref 2. in
     Array.iteri (fun i row -> Array.iteri (fun j d -> if i <> j && d < !best then best := d) row) m;
     !best);
  let t' = T.make fam ~length:(lmin - 1) in
  (match T.colliding_pair t' with
  | Some (i, j) ->
    Printf.printf "  L = %d: pigeonhole collision (F_%d, F_%d); mu distance %.2f; cheater acceptance %.2f\n"
      (lmin - 1) i j
      (Ids_lowerbound.Dist.l1_distance (T.mu_a t' i) (T.mu_a t' j))
      (T.acceptance t' i j);
    Printf.printf "  G(F_%d, F_%d) symmetric = %b (a NO instance accepted => protocol incorrect: %b)\n" i j
      (Iso.is_symmetric (Family.dumbbell fam.(i) fam.(j)))
      (not (T.correct t'))
  | None -> print_endline "  (unexpected: no collision)");
  Printf.printf "  Lemma 3.7 transformation: simple length 4L = %d, decisions preserved = %b\n"
    (T.simple_length t) (T.simple_agrees t);
  (* The dumbbell ground truth behind the whole section. *)
  let ok = ref true in
  Array.iteri
    (fun i fi ->
      Array.iteri
        (fun j fj -> if Iso.is_symmetric (Family.dumbbell fi fj) <> (i = j) then ok := false)
        fam)
    fam;
  Printf.printf "  dumbbell G(F_i,F_j) symmetric iff i = j over all %dx%d pairs: %b\n" (Array.length fam)
    (Array.length fam) !ok

(* --- E5: Theorem 1.5 — GNI in dAMAM[O(n log n)] ---------------------------------- *)

let e5 () =
  header "E5  Theorem 1.5: GNI in dAMAM[O(n log n)]  (distributed Goldwasser-Sipser)";
  Printf.printf "%3s | %9s %9s | %9s %9s | %12s %9s\n" "n" "YES rate" ">=bound" "NO rate" "<=bound"
    "bits/rep" "q";
  let rng = Rng.create 5 in
  List.iter
    (fun n ->
      let yes = Gni.yes_instance rng n and no = Gni.no_instance rng n in
      let params = Gni.params_for ~seed:7 yes in
      let reps = if n <= 6 then 400 else 250 in
      let yes_est =
        est ~protocol:"gni_single" ~n ~prover:"honest-yes" ~trials:reps (fun seed ->
            Gni.run_single ~params ~seed yes Gni.honest)
      in
      let no_est =
        est ~protocol:"gni_single" ~n ~prover:"honest-no" ~trials:reps (fun seed ->
            Gni.run_single ~params ~seed no Gni.honest)
      in
      Printf.printf "%3d | %9.3f %9.3f | %9.3f %9.3f | %12.0f %9d\n" n (rate_of yes_est)
        (Gni.yes_rate_bound params) (rate_of no_est) (Gni.no_rate_bound params) yes_est.Engine.mean_bits
        params.Gni.q)
    [ 6; 7 ];
  print_endline "\nFull amplified protocol (t = 400 repetitions, per-node counting):";
  let yes = Gni.yes_instance rng 6 and no = Gni.no_instance rng 6 in
  let params = Gni.params_for ~repetitions:400 ~seed:8 yes in
  let yes_full =
    est ~protocol:"gni_full_run" ~n:6 ~prover:"honest-yes" ~trials:3 (fun seed ->
        Gni.run ~params ~seed yes Gni.honest)
  in
  let no_full =
    est ~protocol:"gni_full_run" ~n:6 ~prover:"honest-no" ~trials:3 (fun seed ->
        Gni.run ~params ~seed no Gni.honest)
  in
  Printf.printf "  YES verdicts: %d/%d accept (need > 2/3)    NO verdicts: %d/%d accept (need < 1/3)\n"
    yes_full.Engine.accepts yes_full.Engine.trials no_full.Engine.accepts no_full.Engine.trials;
  Printf.printf "  total bits/node: %.0f (= t x O(n log n); threshold %d/%d)\n" yes_full.Engine.mean_bits
    params.Gni.threshold params.Gni.repetitions

(* --- E6: Theorem 3.2 — the linear hash family ------------------------------------- *)

let e6 () =
  header "E6  Theorem 3.2: linear hash family (collision probability vs m/p)";
  Printf.printf "%4s | %10s | %12s %12s | %10s\n" "n" "p" "measured" "m/p bound" "linearity";
  let rng = Rng.create 6 in
  List.iter
    (fun n ->
      let g = Family.random_asymmetric rng n in
      let p = Ids_bignum.Prime.random_prime_in_int rng (10 * n * n * n) (100 * n * n * n) in
      let f = Ids_hash.Field.int_field p in
      let rho = Perm.random_nonidentity rng n in
      let trials = 20_000 in
      let collisions = ref 0 in
      for _ = 1 to trials do
        let a = f.Ids_hash.Field.random rng in
        if Ids_hash.Linear.graph_hash f a g = Ids_hash.Linear.permuted_graph_hash f a g rho then
          incr collisions
      done;
      let lin_ok = ref true in
      for _ = 1 to 200 do
        let a = f.Ids_hash.Field.random rng in
        let s1 = Graph.closed_neighborhood g 0 and s2 = Graph.closed_neighborhood g 1 in
        let h1 = Ids_hash.Linear.row_hash f a ~n ~row:0 s1
        and h2 = Ids_hash.Linear.row_hash f a ~n ~row:1 s2 in
        let whole = Ids_hash.Linear.matrix_hash f a ~n [ (0, s1); (1, s2) ] in
        if whole <> f.Ids_hash.Field.add h1 h2 then lin_ok := false
      done;
      Printf.printf "%4d | %10d | %12.6f %12.6f | %10b\n" n p
        (float_of_int !collisions /. float_of_int trials)
        (Ids_hash.Linear.collision_bound ~n ~p)
        !lin_ok)
    [ 8; 12; 16 ]

(* --- E7: Section 4 — the eps-API hash --------------------------------------------- *)

let e7 () =
  header "E7  Section 4: eps-almost pairwise independent hash (ablation over inner copies k)";
  Printf.printf "%3s | %14s | %14s %14s | %12s\n" "k" "eps (analytic)" "pair-coll" "(1+eps)/q" "marginal dev";
  let rng = Rng.create 7 in
  let q = Ids_bignum.Prime.random_prime_in_int rng (4 * 720) (8 * 720) in
  let f = Ids_hash.Field.int_field q in
  let g1 = Family.random_asymmetric rng 6 and g2 = Family.random_asymmetric rng 6 in
  List.iter
    (fun k ->
      let trials = 60_000 in
      let collisions = ref 0 in
      let buckets = Array.make 8 0 in
      for _ = 1 to trials do
        let spec = Ids_hash.Api.random_spec f ~k rng in
        let h1 = Ids_hash.Api.hash_graph f spec g1 and h2 = Ids_hash.Api.hash_graph f spec g2 in
        if h1 = h2 then incr collisions;
        buckets.(h1 * 8 / q) <- buckets.(h1 * 8 / q) + 1
      done;
      let eps = Ids_hash.Api.epsilon f ~n:6 ~k ~q:(float_of_int q) in
      let dev =
        let e = float_of_int trials /. 8. in
        Array.fold_left (fun acc c -> Float.max acc (Float.abs (float_of_int c -. e) /. e)) 0. buckets
      in
      Printf.printf "%3d | %14.4f | %14.6f %14.6f | %11.3f%%\n" k eps
        (float_of_int !collisions /. float_of_int trials)
        ((1. +. eps) /. float_of_int q)
        (100. *. dev))
    [ 1; 2; 3 ];
  print_endline "\nk = 3 (the protocol default) pushes eps far below 1, which the GS gap needs;";
  print_endline "k = 1 shows why a single linear copy is not almost-pairwise-independent enough."

(* --- E8: Definition 2 — correctness thresholds across all protocols ----------------- *)

let e8 () =
  header "E8  Definition 2: acceptance thresholds (YES > 2/3, NO < 1/3) for every protocol";
  Printf.printf "%-28s | %12s %15s | %12s %15s | %s\n" "protocol" "YES accept" "95% CI" "NO accept"
    "95% CI" "adversary";
  let rng = Rng.create 8 in
  let yes_g = Family.random_symmetric rng 16 and no_g = Family.random_asymmetric rng 16 in
  let row name yes no adversary =
    Printf.printf "%-28s | %12.3f %15s | %12.3f %15s | %s\n" name (rate_of yes) (ci yes) (rate_of no)
      (ci no) adversary
  in
  let yes =
    est ~protocol:"sym_dmam" ~n:16 ~prover:"honest" ~trials:80 (fun seed ->
        Sym_dmam.run ~seed yes_g Sym_dmam.honest)
  in
  let no =
    est ~protocol:"sym_dmam" ~n:16 ~prover:"random-perm" ~trials:80 (fun seed ->
        Sym_dmam.run ~seed no_g Sym_dmam.adversary_random_perm)
  in
  row "Sym dMAM (Protocol 1)" yes no "random non-identity perm";
  let yes2 =
    est ~protocol:"sym_dam" ~n:16 ~prover:"honest" ~trials:20 (fun seed ->
        Sym_dam.run ~seed yes_g Sym_dam.honest)
  in
  let no2 =
    est ~protocol:"sym_dam" ~n:16 ~prover:"search" ~trials:20 (fun seed ->
        Sym_dam.run ~seed no_g Sym_dam.adversary_search)
  in
  row "Sym dAM (Protocol 2)" yes2 no2 "post-challenge search";
  let f = Family.random_asymmetric rng 8 in
  let inst = Dsym.make_instance ~n:8 ~r:2 (Family.dsym_graph f 2) in
  let yes3 =
    est ~protocol:"dsym" ~n:8 ~prover:"honest" ~trials:60 (fun seed -> Dsym.run ~seed inst Dsym.honest)
  in
  let no3 =
    est ~protocol:"dsym" ~n:8 ~prover:"consistent" ~trials:60 (fun seed ->
        let bad = Dsym.make_instance ~n:8 ~r:2 (Family.dsym_perturbed (Rng.create (83 + seed)) f 2) in
        Dsym.run ~seed bad Dsym.adversary_consistent)
  in
  row "DSym dAM" yes3 no3 "consistent play on NO";
  let gy = Gni.yes_instance rng 6 and gn = Gni.no_instance rng 6 in
  let params = Gni.params_for ~repetitions:400 ~seed:9 gy in
  let yes4 =
    est ~protocol:"gni" ~n:6 ~prover:"honest-yes" ~trials:3 (fun seed -> Gni.run ~params ~seed gy Gni.honest)
  in
  let no4 =
    est ~protocol:"gni" ~n:6 ~prover:"honest-no" ~trials:3 (fun seed -> Gni.run ~params ~seed gn Gni.honest)
  in
  row "GNI dAMAM (amplified)" yes4 no4 "optimal preimage search";
  let adv = Option.get (Pls.Lcp_sym.honest yes_g) in
  Printf.printf "%-28s | %12.3f %15s | %12.3f %15s | %s\n" "Sym LCP (distributed NP)"
    (if (Pls.Lcp_sym.verify yes_g adv).Pls.accepted then 1.0 else 0.0)
    "(determ.)"
    (match Pls.Lcp_sym.honest no_g with Some _ -> 1.0 | None -> 0.0)
    "(determ.)" "no witness exists";
  print_endline "\nSPRT early stopping (alpha = beta = 1e-3) on the same threshold questions:";
  let sprt name ~prover run =
    if Obs.enabled () then Obs.reset_metrics ();
    let e, d = Stats.threshold_ci ~max_trials:(scaled 400) run in
    Runlog.log ?metrics:(metrics_snapshot ()) ~protocol:"sym_dmam_sprt" ~n:16 ~prover e;
    Printf.printf "  %-24s: decided %s after %d trials (rate %.3f, budget %d)\n" name
      (match d with
      | Some Ids_engine.Sprt.Above -> "rate >= 2/3"
      | Some Ids_engine.Sprt.Below -> "rate <= 1/3"
      | None -> "nothing (undecided)")
      e.Engine.trials e.Engine.rate (scaled 400)
  in
  sprt "Protocol 1, YES instance" ~prover:"honest" (fun seed -> Sym_dmam.run ~seed yes_g Sym_dmam.honest);
  sprt "Protocol 1, NO instance" ~prover:"random-perm" (fun seed ->
      Sym_dmam.run ~seed no_g Sym_dmam.adversary_random_perm)

(* --- E9: unrestricted GNI (automorphism compensation) ------------------------------- *)

let e9 () =
  header "E9  Extension: unrestricted GNI via automorphism compensation (Goldwasser-Sipser fix)";
  let rng = Rng.create 9 in
  let yes = Gni_full.yes_instance rng 6 and no = Gni_full.no_instance rng 6 in
  Printf.printf "instances use a SYMMETRIC G_0 (|Aut| = %d) — outside Gni's restriction\n"
    (List.length (Lazy.force yes.Gni_full.aut0));
  Printf.printf "candidate-set sizes: YES |S| = %d (= 2 x 6!)   NO |S| = %d (= 6!)\n"
    (Array.length (Lazy.force yes.Gni_full.candidates))
    (Array.length (Lazy.force no.Gni_full.candidates));
  let params = Gni_full.params_for ~seed:7 yes in
  let rate inst prover =
    (est ~protocol:"gni_full" ~n:6 ~prover:"varied" ~trials:300 (fun seed ->
         Gni_full.run_single ~params ~seed inst prover))
      .Engine.rate
  in
  Printf.printf "single-rep rates: YES %.3f (bound >= %.3f)   NO %.3f (bound <= %.3f)\n"
    (rate yes Gni_full.honest) params.Gni_full.yes_bound (rate no Gni_full.honest)
    params.Gni_full.no_bound;
  Printf.printf "fake-automorphism adversary on NO: %.3f (audit round catches every forged alpha)\n"
    (rate no Gni_full.adversary_fake_automorphism);
  let p400 = Gni_full.params_for ~repetitions:400 ~seed:7 yes in
  let oy = Gni_full.run ~params:p400 ~seed:1 yes Gni_full.honest in
  let onn = Gni_full.run ~params:p400 ~seed:1 no Gni_full.honest in
  Printf.printf "amplified verdicts: YES %s, NO %s; %d bits/node total\n"
    (if oy.Outcome.accepted then "ACCEPT" else "REJECT")
    (if onn.Outcome.accepted then "ACCEPT" else "REJECT")
    oy.Outcome.max_bits_per_node

(* --- E10: RPLS verification compression + amplification ablation --------------------- *)

let e10 () =
  header "E10 Extension: randomized PLS (related work [4]) and amplification ablation";
  print_endline "RPLS for Sym: advice unchanged, neighbor verification compressed exponentially";
  Printf.printf "%6s | %14s | %16s %16s | %10s\n" "n" "advice b/node" "verify b/edge" "deterministic"
    "accept";
  let rng = Rng.create 10 in
  List.iter
    (fun n ->
      let g = Family.random_symmetric rng n in
      let advice = Option.get (Pls.Lcp_sym.honest g) in
      let v = Rpls.verify_sym ~seed:3 g advice in
      Printf.printf "%6d | %14d | %16d %16d | %10b\n" n v.Rpls.advice_bits_per_node
        v.Rpls.verification_bits_per_edge
        (Rpls.deterministic_verification_bits g)
        v.Rpls.accepted)
    [ 16; 32; 64 ];
  print_endline "(the advice column still grows as n^2 — RPLS does not subsume interaction)";
  print_endline "\nAmplification: Protocol 1 repeated with majority vote (Hoeffding-sized)";
  Printf.printf "%8s | %10s %10s\n" "delta" "trials t" "threshold";
  List.iter
    (fun delta ->
      let t, tau = Amplify.trials_for ~yes_rate:(2. /. 3.) ~no_rate:(1. /. 3.) ~delta in
      Printf.printf "%8.0e | %10d %10d\n" delta t tau)
    [ 0.1; 0.01; 1e-4; 1e-9 ];
  let yes_g = Family.random_symmetric rng 12 and no_g = Family.random_asymmetric rng 12 in
  let yes = Amplify.majority ~trials:15 (fun seed -> Sym_dmam.run ~seed yes_g Sym_dmam.honest) in
  let no =
    Amplify.majority ~trials:15 (fun seed -> Sym_dmam.run ~seed no_g Sym_dmam.adversary_random_perm)
  in
  Printf.printf "15x Protocol 1, n = 12: YES %s (%d/15), NO %s (%d/15), %d bits/node total\n"
    (if yes.Amplify.outcome.Outcome.accepted then "ACCEPT" else "REJECT")
    yes.Amplify.accepts
    (if no.Amplify.outcome.Outcome.accepted then "ACCEPT" else "REJECT")
    no.Amplify.accepts yes.Amplify.outcome.Outcome.max_bits_per_node

(* --- E11: the marked-subgraph GNI variant (Section 2.3) ------------------------------ *)

let e11 () =
  header "E11 Extension: marked-subgraph GNI (Section 2.3's alternative formulation)";
  let rng = Rng.create 11 in
  let yes = Gni_induced.yes_instance rng 10 and no = Gni_induced.no_instance rng 10 in
  Printf.printf "network: %d nodes; marked classes of size %d induce P4 vs K1,3 (both symmetric)\n"
    (Graph.n yes.Gni_induced.g) yes.Gni_induced.k;
  Printf.printf "candidate sets: YES |S| = %d (= 2 P(10,4))   NO |S| = %d (= P(10,4))\n"
    (Array.length (Lazy.force yes.Gni_induced.candidates))
    (Array.length (Lazy.force no.Gni_induced.candidates));
  let params = Gni_induced.params_for ~seed:3 yes in
  let rate inst =
    (est ~protocol:"gni_induced" ~n:10 ~prover:"honest" ~trials:250 (fun seed ->
         Gni_induced.run_single ~params ~seed inst Gni_induced.honest))
      .Engine.rate
  in
  Printf.printf "single-rep rates: YES %.3f (bound >= %.3f)   NO %.3f (bound <= %.3f)\n"
    (rate yes) params.Gni_induced.yes_bound (rate no) params.Gni_induced.no_bound;
  let p = Gni_induced.params_for ~repetitions:300 ~seed:3 yes in
  let oy = Gni_induced.run ~params:p ~seed:1 yes Gni_induced.honest in
  let onn = Gni_induced.run ~params:p ~seed:1 no Gni_induced.honest in
  Printf.printf "amplified verdicts: YES %s, NO %s; %d bits/node total\n"
    (if oy.Outcome.accepted then "ACCEPT" else "REJECT")
    (if onn.Outcome.accepted then "ACCEPT" else "REJECT")
    oy.Outcome.max_bits_per_node;
  print_endline "\nContrast case from the introduction: bipartiteness has a 1-bit PLS";
  Printf.printf "%6s | %18s | %18s\n" "n" "bipartite advice" "Sym LCP advice";
  List.iter
    (fun n ->
      let g = Graph.complete_bipartite (n / 2) (n - (n / 2)) in
      let adv = Option.get (Pls.Lcp_bipartite.honest g) in
      let v = Pls.Lcp_bipartite.verify g adv in
      Printf.printf "%6d | %18d | %18d\n" n v.Pls.advice_bits_per_node (Pls.Lcp_sym.advice_bits g))
    [ 16; 64; 256 ]

(* --- E12: ablation — Protocol 1 soundness vs. hash-field size ------------------------- *)

let e12 () =
  header "E12 Ablation: Protocol 1 soundness error vs. prime size (why p ~ n^3)";
  print_endline "Exact acceptance probability of a committed cheat (best over transpositions +";
  print_endline "20 random permutations) on an asymmetric n = 10 graph, as the field shrinks:";
  Printf.printf "%12s | %10s | %16s | %12s\n" "p range" "p" "best adversary" "m/p bound";
  let rng = Rng.create 12 in
  let g = Family.random_asymmetric rng 10 in
  let n = 10 in
  let m = (n * n) + n in
  List.iter
    (fun (label, lo, hi) ->
      let p = Ids_bignum.Prime.random_prime_in_int rng lo hi in
      let params = { Sym_dmam.p; field = Ids_hash.Field.int_field p } in
      let best = Sym_dmam.best_adversary_bound ~sample:20 ~seed:5 params g in
      Printf.printf "%12s | %10d | %16.4f | %12.4f\n" label p best
        (Float.min 1. (float_of_int m /. float_of_int p)))
    [ ("~n", n, 4 * n);
      ("~n^2", n * n, 4 * n * n);
      ("~n^3 (paper)", 10 * n * n * n, 100 * n * n * n);
      ("~n^4", 10 * n * n * n * n, 100 * n * n * n * n)
    ];
  print_endline "\nBelow ~n^2 the difference polynomial can vanish on a large fraction of the";
  print_endline "field and cheats slip through; the paper's 10n^3..100n^3 window drives the";
  print_endline "error under 1/(9n) while keeping the index at O(log n) bits."

(* --- E13: robustness — degradation under injected network faults --------------------- *)

let e13 () =
  let module Fault = Ids_network.Fault in
  let module Sweep = Ids_engine.Sweep in
  header "E13 Robustness: completeness/soundness degradation under network faults";
  print_endline "Acceptance rate of every registry case (Adversary.cases) under a grid of";
  print_endline "fault specs (IDS_FAULT_SPEC appends one more). Completeness should degrade";
  print_endline "gracefully with the rates; soundness only improves (faults add reasons to";
  print_endline "reject); equivocation must drive every connected-graph run to reject.";
  let grid =
    [ Fault.none;
      Fault.drop_only 0.01;
      Fault.drop_only 0.05;
      Fault.drop_only 0.2;
      Fault.corrupt_only 0.01;
      Fault.corrupt_only 0.05;
      Fault.corrupt_only 0.2;
      Fault.crash_only 0.05;
      Fault.crash_only ~crash_mode:Fault.Crash_vacuous 0.05;
      Fault.equivocate_only
    ]
    @ (match Fault.of_env () with Some s when not (Fault.is_none s) -> [ s ] | _ -> [])
  in
  let trials = scaled 25 in
  List.iter
    (fun (c : Adversary.case) ->
      Printf.printf "\n%s / %s (%s, n = %d):\n" c.Adversary.protocol c.Adversary.strategy
        (Adversary.kind_to_string c.Adversary.kind) c.Adversary.n;
      Printf.printf "  %-36s | %7s %15s | %10s\n" "fault" "acc" "95% CI" "bits/node";
      let points =
        Sweep.run ~protocol:c.Adversary.protocol ~n:c.Adversary.n
          ~prover:(Printf.sprintf "%s:%s" (Adversary.kind_to_string c.Adversary.kind) c.Adversary.strategy)
          ~trials ~label:Fault.to_string ~specs:grid
          (fun spec seed -> Stats.trial_of_outcome (c.Adversary.run ~fault:spec seed))
      in
      List.iter
        (fun (p : _ Sweep.point) ->
          Printf.printf "  %-36s | %7.3f %15s | %10.1f\n" p.Sweep.label (rate_of p.Sweep.estimate)
            (ci p.Sweep.estimate) p.Sweep.estimate.Engine.mean_bits)
        points)
    (Adversary.cases ());
  print_endline "\nShape: the fault=none row reproduces the clean completeness/soundness rates";
  print_endline "bit-for-bit; the bits/node column is constant down each block (the ledger";
  print_endline "records what the prover transmits, delivered or not)."

(* --- E15: observability — the tracing layer's per-round profile ----------------------- *)

let e15 () =
  header "E15 Observability: per-round bit profile from the tracing layer (IDS_TRACE)";
  print_endline "Tracing forced on for this experiment; each table is one protocol family's";
  print_endline "metrics snapshot, averaged over the estimate's trials. The per-round sums";
  print_endline "come from the same program points as the Cost ledger, so they add up to the";
  print_endline "bits columns of E1..E5 exactly (pinned by test_obs).";
  let was = Obs.enabled () in
  Obs.set_enabled true;
  let find name (s : Obs.snapshot) = List.find_opt (fun c -> c.Obs.cname = name) s.Obs.counters in
  let total name s = match find name s with Some c -> c.Obs.total | None -> 0 in
  let profile title ~protocol ~n ~prover ~trials run =
    Obs.reset_metrics ();
    let e = est ~protocol ~n ~prover ~trials run in
    let s = Obs.snapshot () in
    let t = float_of_int e.Engine.trials in
    Printf.printf "\n%s  (n = %d, %d trials): accept %.3f %s, %.1f bits/node (max)\n" title n
      e.Engine.trials (rate_of e) (ci e) e.Engine.mean_bits;
    Printf.printf "  per trial: %.1f bits prover->nodes, %.1f bits nodes->prover, %.1f challenge draws\n"
      (float_of_int (total "net.from_prover_bits" s) /. t)
      (float_of_int (total "net.to_prover_bits" s) /. t)
      (float_of_int (total "net.challenge_draws" s) /. t);
    (match find "net.from_prover_bits" s with
    | None -> ()
    | Some c ->
      Printf.printf "  %5s | %18s | %14s\n" "round" "bits/trial (down)" "max node cell";
      List.iter
        (fun (r : Obs.round_row) ->
          Printf.printf "  %5d | %18.1f | %14d\n" r.Obs.round (float_of_int r.Obs.sum /. t) r.Obs.max_node)
        c.Obs.rounds);
    let pows = total "mont.pow" s in
    if pows > 0 then
      Printf.printf "  Montgomery kernel: %.1f pows, %.1f reductions per trial\n"
        (float_of_int pows /. t)
        (float_of_int (total "mont.redc" s) /. t)
  in
  let rng = Rng.create 15 in
  let sym16 = Family.random_symmetric rng 16 in
  profile "Protocol 1 (Sym dMAM)" ~protocol:"sym_dmam" ~n:16 ~prover:"honest" ~trials:40 (fun seed ->
      Sym_dmam.run ~seed sym16 Sym_dmam.honest);
  profile "Protocol 2 (Sym dAM)" ~protocol:"sym_dam" ~n:16 ~prover:"honest" ~trials:10 (fun seed ->
      Sym_dam.run ~seed sym16 Sym_dam.honest);
  let f8 = Family.random_asymmetric rng 8 in
  let inst = Dsym.make_instance ~n:8 ~r:2 (Family.dsym_graph f8 2) in
  profile "DSym (dAM)" ~protocol:"dsym" ~n:8 ~prover:"honest" ~trials:40 (fun seed ->
      Dsym.run ~seed inst Dsym.honest);
  let gy = Gni.yes_instance rng 6 in
  let gparams = Gni.params_for ~seed:7 gy in
  profile "GNI (dAMAM, single rep)" ~protocol:"gni_single" ~n:6 ~prover:"honest-yes" ~trials:60
    (fun seed -> Gni.run_single ~params:gparams ~seed gy Gni.honest);
  Obs.set_enabled was

(* --- Bechamel timing ----------------------------------------------------------------- *)

let timing () =
  header "Timing (Bechamel, one Test.make per experiment hot path)";
  let open Bechamel in
  let rng = Rng.create 10 in
  let sym16 = Family.random_symmetric rng 16 in
  let asym16 = Family.random_asymmetric rng 16 in
  let f8 = Family.random_asymmetric rng 8 in
  let dsym_inst = Dsym.make_instance ~n:8 ~r:2 (Family.dsym_graph f8 2) in
  let gni_inst = Gni.yes_instance rng 6 in
  let gni_params = Gni.params_for ~seed:1 gni_inst in
  let seed = ref 0 in
  let next () =
    incr seed;
    !seed
  in
  let tests =
    [ Test.make ~name:"e1-dmam-sym-n16"
        (Staged.stage (fun () -> Sym_dmam.run ~seed:(next ()) sym16 Sym_dmam.honest));
      Test.make ~name:"e2-dam-sym-n16"
        (Staged.stage (fun () -> Sym_dam.run ~seed:(next ()) sym16 Sym_dam.honest));
      Test.make ~name:"e3-dsym-n8" (Staged.stage (fun () -> Dsym.run ~seed:(next ()) dsym_inst Dsym.honest));
      Test.make ~name:"e5-gni-single-rep-n6"
        (Staged.stage (fun () -> Gni.run_single ~params:gni_params ~seed:(next ()) gni_inst Gni.honest));
      Test.make ~name:"e6-linear-hash-n16"
        (Staged.stage
           (let f = Ids_hash.Field.int_field 10007 in
            fun () -> Ids_hash.Linear.graph_hash f 1234 sym16));
      Test.make ~name:"e7-api-hash-n6"
        (Staged.stage
           (let f = Ids_hash.Field.int_field 4099 in
            let spec = Ids_hash.Api.random_spec f ~k:3 (Rng.create 1) in
            let g = gni_inst.Gni.g0 in
            fun () -> Ids_hash.Api.hash_graph f spec g));
      Test.make ~name:"e8-lcp-sym-verify-n16"
        (Staged.stage
           (let adv = Option.get (Pls.Lcp_sym.honest sym16) in
            fun () -> Pls.Lcp_sym.verify sym16 adv));
      Test.make ~name:"iso-automorphism-search-n16"
        (Staged.stage (fun () -> Iso.find_nontrivial_automorphism asym16))
    ]
  in
  let grouped = Test.make_grouped ~name:"ids" ~fmt:"%s/%s" tests in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.4) ~kde:None () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] grouped in
  Printf.printf "%-34s | %14s | %8s\n" "benchmark" "time/run" "runs";
  let rows =
    Hashtbl.fold
      (fun name (b : Benchmark.t) acc ->
        let ols =
          Analyze.OLS.ols ~bootstrap:0 ~r_square:false ~responder:"monotonic-clock"
            ~predictors:[| Measure.run |] b.Benchmark.lr
        in
        let ns = match Analyze.OLS.estimates ols with Some [ e ] -> e | _ -> nan in
        (name, ns, b.Benchmark.stats.Benchmark.samples) :: acc)
      raw []
  in
  List.iter
    (fun (name, ns, samples) ->
      let time =
        if ns >= 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
        else if ns >= 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
        else if ns >= 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
        else Printf.sprintf "%8.0f ns" ns
      in
      Printf.printf "%-34s | %14s | %8d\n" name time samples)
    (List.sort (fun (a, _, _) (b, _, _) -> Stdlib.compare a b) rows)

let experiments =
  [ ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6); ("e7", e7); ("e8", e8);
    ("e9", e9); ("e10", e10); ("e11", e11); ("e12", e12); ("e13", e13); ("e15", e15) ]

let () =
  (* Every estimate printed above is also appended, one JSON object per
     line, to the machine-readable run log (IDS_RUNLOG overrides the path;
     IDS_RUNLOG="" disables). *)
  Runlog.open_from_env ~default:"ids_runs.jsonl" ();
  Printf.printf "engine: %d domain(s) (IDS_DOMAINS), trial scale x%d (IDS_TRIALS_SCALE)\n"
    (Engine.default_domains ()) (scaled 1);
  let args = List.tl (Array.to_list Sys.argv) in
  (match args with
  | [] ->
    List.iter (fun (_, f) -> f ()) experiments;
    timing ()
  | [ "tables" ] -> List.iter (fun (_, f) -> f ()) experiments
  | [ "timing" ] -> timing ()
  | names ->
    List.iter
      (fun name ->
        let name = String.lowercase_ascii name in
        let name = if name = "faults" then "e13" else name in
        match List.assoc_opt name experiments with
        | Some f -> f ()
        | None -> Printf.eprintf "unknown experiment %S (e1..e13, e15, faults, tables, timing)\n" name)
      names);
  Runlog.close ();
  (* With IDS_TRACE=1 the whole run's spans become one Chrome trace
     (IDS_TRACE_OUT overrides the path; empty disables). *)
  ignore (Trace.write_from_env () : string option)
