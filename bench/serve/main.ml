(* E18: the fault-tolerant verification service under chaos.

   Boots the ids_serve daemon (forked in-process), drives it through a
   pipelined client, and measures availability and latency while seeded
   chaos kills workers mid-request:

   - phase A (throughput + chaos): a deterministic workload over the whole
     request catalog, 10% seeded worker-kill rate plus a handful of forced
     kills (kill_attempt=1), closed-loop with a fixed window. Asserts every
     accepted request completes (retry absorbs every crash), every
     completed estimate is bit-identical to the in-process engine, and the
     daemon drains cleanly on SIGTERM.
   - phase B (load shedding): a small pool behind a tiny queue gets a
     burst; submits beyond the bound must be shed "overloaded" immediately
     and everything accepted must still complete.
   - phase C (crash-safe log): the daemon's framed run log must hold
     exactly the completed records; a simulated kill -9 mid-write (a torn
     trailing frame appended to the file) must be detected by the lenient
     reader and truncated away by recovery on the next writer open.

   The kill schedule is pure in (chaos seed, request id, attempt) — the
   same requests die on the same attempts on every machine and every
   IDS_DOMAINS setting — so the availability numbers are comparable
   across runs even though wall-clock timings are not.

   Full run:   dune exec bench/serve/main.exe     (writes BENCH_serve.json)
   Smoke run:  dune exec bench/serve/main.exe -- --smoke
               (3 requests incl. one forced kill; wired into @runtest-fast) *)

module Server = Ids_serve.Server
module Client = Ids_serve.Client
module Request = Ids_serve.Request
module Catalog = Ids_serve.Catalog
module Chaos = Ids_serve.Chaos
module Supervisor = Ids_serve.Supervisor
module Runlog = Ids_engine.Runlog
module Fault = Ids_network.Fault

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("bench/serve FAILED: " ^ m); exit 1) fmt
let now () = Unix.gettimeofday ()

(* --- the in-process oracle -------------------------------------------------------- *)

let oracle : (string, string) Hashtbl.t = Hashtbl.create 32

let expected_record ~protocol ~strategy ~trials ~fault =
  let key = Printf.sprintf "%s/%s/%d/%s" protocol strategy trials (Fault.to_string fault) in
  match Hashtbl.find_opt oracle key with
  | Some r -> r
  | None ->
    let r =
      match Catalog.execute_request ~protocol ~strategy ~trials ~fault with
      | Ok r -> r
      | Error e -> fail "oracle cannot execute %s: %s" key e
    in
    Hashtbl.add oracle key r;
    r

(* --- daemon lifecycle ------------------------------------------------------------- *)

let start_daemon cfg =
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 -> (
    match Server.run cfg with
    | Ok () -> Unix._exit 0
    | Error e ->
      Printf.eprintf "daemon: %s\n%!" e;
      Unix._exit 1)
  | pid -> pid

let stop_daemon pid =
  Unix.kill pid Sys.sigterm;
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED c -> fail "daemon exited %d after SIGTERM (expected a clean drain)" c
  | _, (Unix.WSIGNALED s | Unix.WSTOPPED s) -> fail "daemon killed/stopped by signal %d" s

(* --- phase A: throughput + chaos -------------------------------------------------- *)

type served = { sreq : Request.t; sresp : Request.response; latency_ms : float }

(* Closed-loop pipelined driver: keep [window] requests in flight on one
   connection, collect every response with its latency. *)
let drive client reqs ~window =
  let n = Array.length reqs in
  let t0 = Hashtbl.create n in
  let by_id = Hashtbl.create n in
  Array.iter (fun (r : Request.t) -> Hashtbl.replace by_id r.Request.id r) reqs;
  let out = ref [] in
  let sent = ref 0 and received = ref 0 in
  while !received < n do
    while !sent < n && !sent - !received < window do
      let req = reqs.(!sent) in
      Hashtbl.replace t0 req.Request.id (now ());
      (match Client.send client req with
      | Ok () -> ()
      | Error e -> fail "send %s: %s" req.Request.id e);
      incr sent
    done;
    match Client.recv client with
    | Error e -> fail "recv: %s" e
    | Ok resp ->
      let id = Request.response_id resp in
      let sreq =
        match Hashtbl.find_opt by_id id with
        | Some r -> r
        | None -> fail "response for unknown id %S" id
      in
      let latency_ms =
        match Hashtbl.find_opt t0 id with
        | Some t -> (now () -. t) *. 1000.
        | None -> 0.
      in
      out := { sreq; sresp = resp; latency_ms } :: !out;
      incr received
  done;
  List.rev !out

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0. else sorted.(min (n - 1) (p * n / 100))

(* The deterministic workload: round-robin over the catalog, every
   [forced_every]-th request carries kill_attempt=1, every 7th injects a
   network fault (the wire's fault field must survive the trip). *)
let build_requests ~count ~forced_every ~trials_for =
  let entries = Array.of_list (Catalog.entries ()) in
  Array.init count (fun i ->
      let e = entries.(i mod Array.length entries) in
      let fault = if i mod 7 = 3 then Fault.drop_only 0.1 else Fault.none in
      let kill_attempt = if forced_every > 0 && i mod forced_every = 0 then Some 1 else None in
      Request.make_estimate ?kill_attempt ~fault ~id:(Printf.sprintf "q%04d" i)
        ~protocol:e.Catalog.protocol ~strategy:e.Catalog.strategy
        ~trials:(trials_for e.Catalog.protocol) ())

type phase_a = {
  sent : int;
  completed : int;
  retried_reqs : int;
  forced : int;
  wall_s : float;
  p50_ms : float;
  p99_ms : float;
  max_ms : float;
  recovery_p50_ms : float;
  recovery_max_ms : float;
  stats : (string * int) list;
  log_records : string list;
}

let phase_a ~mode ~socket ~log_path ~chaos ~count ~forced_every ~window ~trials_for =
  let cfg =
    { Server.default with
      Server.socket;
      log_path;
      chaos;
      verbose = Sys.getenv_opt "IDS_SERVE_VERBOSE" <> None;
      sup = { Supervisor.default with Supervisor.workers = 4; queue_bound = 256 }
    }
  in
  let reqs = build_requests ~count ~forced_every ~trials_for in
  let pid = start_daemon cfg in
  let client =
    match Client.connect ~wait:10. socket with
    | Ok c -> c
    | Error e -> fail "connect: %s" e
  in
  let t_start = now () in
  let served = drive client reqs ~window in
  let wall_s = now () -. t_start in
  (* Every request must have completed, bit-identical to the oracle. *)
  let retried_lat = ref [] in
  let retried_reqs = ref 0 and forced = ref 0 in
  List.iter
    (fun { sreq; sresp; latency_ms } ->
      match (sreq.Request.op, sresp) with
      | ( Request.Estimate { protocol; strategy; trials; fault; kill_attempt; _ },
          Request.Estimated { attempts; record; _ } ) ->
        let want = expected_record ~protocol ~strategy ~trials ~fault in
        if record <> want then
          fail "%s: served record differs from the in-process engine\n  served: %s\n  oracle: %s"
            sreq.Request.id record want;
        if attempts > 1 then begin
          incr retried_reqs;
          retried_lat := latency_ms :: !retried_lat
        end;
        (match kill_attempt with
        | Some _ ->
          incr forced;
          if attempts < 2 then
            fail "%s: forced kill_attempt=1 but the daemon reports %d attempt(s)" sreq.Request.id
              attempts
        | None -> ())
      | _, Request.Rejected { reject; _ } ->
        let r =
          match reject with
          | Request.Overloaded -> "overloaded"
          | Request.Draining -> "draining"
          | Request.Bad_request e -> "bad_request: " ^ e
          | Request.Failed e -> "failed: " ^ e
        in
        fail "%s: rejected (%s) — chaos must be absorbed by retry" sreq.Request.id r
      | _ -> fail "%s: unexpected response shape" sreq.Request.id)
    served;
  (* The daemon's own view must agree: everything accepted completed. *)
  let stats =
    match
      Client.request client { Request.id = "stats"; op = Request.Stats Request.Basic; trace = None }
    with
    | Ok (Request.Stats_reply { stats; _ }) -> stats
    | Ok _ -> fail "stats: wrong response shape"
    | Error e -> fail "stats: %s" e
  in
  let stat name =
    match List.assoc_opt name stats with Some v -> v | None -> fail "stats lack %S" name
  in
  if stat "accepted" <> count then fail "accepted %d of %d submits" (stat "accepted") count;
  if stat "completed" <> count then
    fail "availability broken: completed %d of %d accepted" (stat "completed") count;
  if !forced > 0 && stat "worker_crashes" = 0 then fail "forced kills but no crashes counted";
  Client.close client;
  stop_daemon pid;
  (* The crash-safe log holds exactly the completed records (order is
     completion order, so compare as multisets). *)
  let log_records =
    match Runlog.read_file_lenient log_path with
    | Error e -> fail "run log unreadable after drain: %s" e
    | Ok { Runlog.records = _; tail = Some t; _ } ->
      fail "run log not clean after drain: %s" (Runlog.tail_error_to_string t)
    | Ok { Runlog.records; tail = None; _ } ->
      ignore records;
      (* Re-read raw framed payloads for exact string comparison. *)
      let ic = open_in_bin log_path in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      let rec payloads off acc =
        if off >= String.length s then List.rev acc
        else
          match String.index_from_opt s off '\n' with
          | None -> fail "run log: unterminated frame header"
          | Some hdr_end ->
            let plen =
              int_of_string (String.sub s (off + String.length Runlog.Framed.magic)
                               (hdr_end - off - String.length Runlog.Framed.magic))
            in
            payloads (hdr_end + 1 + plen + 1) (String.sub s (hdr_end + 1) plen :: acc)
      in
      payloads 0 []
  in
  let want =
    List.filter_map
      (fun { sresp; _ } ->
        match sresp with Request.Estimated { record; _ } -> Some record | _ -> None)
      served
  in
  if List.sort compare log_records <> List.sort compare want then
    fail "run log records (%d) differ from the served estimates (%d)" (List.length log_records)
      (List.length want);
  let lat = Array.of_list (List.map (fun s -> s.latency_ms) served) in
  Array.sort compare lat;
  let rlat = Array.of_list !retried_lat in
  Array.sort compare rlat;
  Printf.printf
    "phase A (%s): %d requests in %.2fs (%.1f req/s), p50 %.1fms p99 %.1fms, %d retried (forced %d), crashes %d, restarts %d\n%!"
    mode count wall_s
    (float_of_int count /. wall_s)
    (percentile lat 50) (percentile lat 99) !retried_reqs !forced (stat "worker_crashes")
    (stat "restarts");
  { sent = count;
    completed = count;
    retried_reqs = !retried_reqs;
    forced = !forced;
    wall_s;
    p50_ms = percentile lat 50;
    p99_ms = percentile lat 99;
    max_ms = (if Array.length lat = 0 then 0. else lat.(Array.length lat - 1));
    recovery_p50_ms = percentile rlat 50;
    recovery_max_ms = (if Array.length rlat = 0 then 0. else rlat.(Array.length rlat - 1));
    stats;
    log_records
  }

(* --- phase B: load shedding ------------------------------------------------------- *)

let phase_b ~socket ~burst =
  let cfg =
    { Server.default with
      Server.socket;
      log_path = "";
      chaos = Chaos.none;
      sup = { Supervisor.default with Supervisor.workers = 2; queue_bound = 4 }
    }
  in
  let pid = start_daemon cfg in
  let client =
    match Client.connect ~wait:10. socket with
    | Ok c -> c
    | Error e -> fail "connect: %s" e
  in
  (* Burst-send without reading: the daemon sees the whole batch before any
     worker can finish, so everything beyond workers+queue_bound must shed. *)
  let reqs =
    Array.init burst (fun i ->
        Request.make_estimate ~id:(Printf.sprintf "b%03d" i) ~protocol:"sym_dam"
          ~strategy:"honest" ~trials:3 ())
  in
  Array.iter
    (fun r -> match Client.send client r with Ok () -> () | Error e -> fail "burst send: %s" e)
    reqs;
  let ok = ref 0 and shed = ref 0 in
  for _ = 1 to burst do
    match Client.recv client with
    | Error e -> fail "burst recv: %s" e
    | Ok (Request.Estimated { record; _ }) ->
      let want = expected_record ~protocol:"sym_dam" ~strategy:"honest" ~trials:3 ~fault:Fault.none in
      if record <> want then fail "burst: served record differs from the in-process engine";
      incr ok
    | Ok (Request.Rejected { reject = Request.Overloaded; _ }) -> incr shed
    | Ok (Request.Rejected _) -> fail "burst: rejection other than overloaded"
    | Ok _ -> fail "burst: unexpected response shape"
  done;
  if !shed = 0 then fail "burst of %d never shed (queue bound not enforced)" burst;
  if !ok = 0 then fail "burst of %d all shed (nothing served)" burst;
  if !ok + !shed <> burst then fail "burst accounting: %d ok + %d shed <> %d" !ok !shed burst;
  Client.close client;
  stop_daemon pid;
  Printf.printf "phase B: burst %d -> %d served, %d shed (queue bound 4, 2 workers)\n%!" burst !ok
    !shed;
  (!ok, !shed)

(* --- phase C: crash-safe log recovery --------------------------------------------- *)

let phase_c ~log_path ~expect_records =
  (* Simulate kill -9 mid-append: a torn trailing frame. *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 log_path in
  output_string oc "=IDS 4096\n{\"torn\":tr";
  close_out oc;
  (match Runlog.read_file_lenient log_path with
  | Error e -> fail "torn log unreadable: %s" e
  | Ok { Runlog.records; tail = Some (Runlog.Torn_tail _); _ } ->
    if List.length records <> expect_records then
      fail "torn log: %d records visible, want %d" (List.length records) expect_records
  | Ok { Runlog.tail; _ } ->
    fail "torn tail not detected (tail = %s)"
      (match tail with None -> "none" | Some t -> Runlog.tail_error_to_string t));
  (* Recovery on the next writer open truncates the torn tail... *)
  let removed =
    match Runlog.Framed.create log_path with
    | Error e -> fail "recovery open failed: %s" e
    | Ok w ->
      let t = Runlog.Framed.truncated w in
      Runlog.Framed.close w;
      t
  in
  if removed = 0 then fail "recovery removed nothing (torn tail survived)";
  (* ...leaving exactly the completed records, cleanly readable. *)
  (match Runlog.read_file_lenient log_path with
  | Error e -> fail "recovered log unreadable: %s" e
  | Ok { Runlog.records; tail = None; _ } ->
    if List.length records <> expect_records then
      fail "recovered log: %d records, want %d" (List.length records) expect_records
  | Ok { Runlog.tail = Some t; _ } ->
    fail "recovered log still dirty: %s" (Runlog.tail_error_to_string t));
  Printf.printf "phase C: torn tail (%d bytes) detected and truncated; %d records intact\n%!"
    removed expect_records

(* --- report ----------------------------------------------------------------------- *)

let write_report ~out ~mode (a : phase_a) ~burst_ok ~burst_shed =
  let oc = open_out out in
  let p fmt = Printf.fprintf oc fmt in
  let stat name = Option.value (List.assoc_opt name a.stats) ~default:0 in
  p "{\n";
  p "  \"schema_version\": 1,\n";
  p "  \"mode\": %S,\n" mode;
  p "  \"chaos\": {\"kill_rate\": 0.1, \"seed\": 7, \"forced_kills\": %d},\n" a.forced;
  p "  \"requests\": {\"sent\": %d, \"completed\": %d, \"retried\": %d, \"failed\": 0},\n" a.sent
    a.completed a.retried_reqs;
  p "  \"availability\": %.4f,\n" (float_of_int a.completed /. float_of_int a.sent);
  p "  \"bit_identical\": true,\n";
  p "  \"throughput_rps\": %.2f,\n" (float_of_int a.sent /. a.wall_s);
  p "  \"latency_ms\": {\"p50\": %.2f, \"p99\": %.2f, \"max\": %.2f},\n" a.p50_ms a.p99_ms a.max_ms;
  p "  \"recovery_ms\": {\"p50\": %.2f, \"max\": %.2f},\n" a.recovery_p50_ms a.recovery_max_ms;
  p "  \"supervisor\": {\"worker_crashes\": %d, \"timed_out\": %d, \"restarts\": %d},\n"
    (stat "worker_crashes") (stat "timed_out") (stat "restarts");
  p "  \"shed_burst\": {\"sent\": %d, \"served\": %d, \"shed\": %d},\n" (burst_ok + burst_shed)
    burst_ok burst_shed;
  p "  \"log\": {\"records\": %d, \"torn_tail_recovered\": true}\n" (List.length a.log_records);
  p "}\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" out

(* --- main ------------------------------------------------------------------------- *)

let () =
  let smoke = ref false and out = ref "BENCH_serve.json" in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
      smoke := true;
      parse rest
    | ("-o" | "--out") :: path :: rest ->
      out := path;
      parse rest
    | arg :: _ -> fail "unknown argument %S" arg
  in
  parse (List.tl (Array.to_list Sys.argv));
  let socket = Printf.sprintf "ids_bench_%d.sock" (Unix.getpid ()) in
  let log_path = Printf.sprintf "ids_bench_%d_runs.jsonl" (Unix.getpid ()) in
  if Sys.file_exists log_path then Sys.remove log_path;
  let cleanup () =
    List.iter (fun f -> if Sys.file_exists f then Sys.remove f) [ socket; log_path ]
  in
  Fun.protect ~finally:cleanup (fun () ->
      if !smoke then begin
        (* serve-smoke: 3 requests, one forced worker kill, clean drain. *)
        let a =
          phase_a ~mode:"smoke" ~socket ~log_path ~chaos:Chaos.none ~count:3 ~forced_every:2
            ~window:3 ~trials_for:(fun _ -> 3)
        in
        phase_c ~log_path ~expect_records:3;
        if a.retried_reqs < a.forced then fail "forced kills did not surface as retries";
        print_endline "bench/serve smoke: OK"
      end
      else begin
        let a =
          phase_a ~mode:"full" ~socket ~log_path ~chaos:(Chaos.make ~kill:0.1 ~seed:7 ())
            ~count:60 ~forced_every:10 ~window:16
            ~trials_for:(function "sym_dam" -> 4 | "gni" -> 8 | _ -> 16)
        in
        let burst_ok, burst_shed = phase_b ~socket ~burst:40 in
        phase_c ~log_path ~expect_records:60;
        write_report ~out:!out ~mode:"full" a ~burst_ok ~burst_shed;
        print_endline "bench/serve: OK"
      end)
