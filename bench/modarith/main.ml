(* Microbenchmark for the modular-arithmetic kernel: naive Modarith (long
   division everywhere) versus the precomputed contexts (Montgomery for odd
   moduli, Barrett for even) across modulus sizes bracketing what the
   protocols draw.

   Full run:   dune exec bench/modarith/main.exe        (writes BENCH_modarith.json)
   Smoke run:  dune exec bench/modarith/main.exe -- --smoke
               (tiny sizes and budgets; wired into @runtest-fast)

   Every timed pair is also cross-checked for equality, so the benchmark
   doubles as an end-to-end oracle test at sizes the unit tests skip. *)

module Nat = Ids_bignum.Nat
module Modarith = Ids_bignum.Modarith
module Rng = Ids_bignum.Rng

type row = {
  bits : int;
  parity : string;
  op : string;
  reps : int;
  naive_us : float;
  ctx_us : float;
  speedup : float;
}

let time_us reps f =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    ignore (Sys.opaque_identity (f ()))
  done;
  (Unix.gettimeofday () -. t0) *. 1e6 /. float_of_int reps

(* Best of three: the mul timing windows are a couple of milliseconds, so a
   single major-GC slice (the pow timings allocate heavily) can skew one
   side by several x. The minimum is the standard microbenchmark answer. *)
let time_us_best reps f = min (time_us reps f) (min (time_us reps f) (time_us reps f))

let random_modulus rng ~bits ~odd =
  let top = Nat.shift_left Nat.one (bits - 1) in
  let m = Nat.add top (Nat.random_below rng top) in
  let m = if Nat.equal (Nat.rem m (Nat.of_int 2)) Nat.one = odd then m else Nat.add m Nat.one in
  (* keep the requested bit length after the parity nudge *)
  if Nat.bit_length m = bits then m else Nat.sub m (Nat.of_int 2)

let check ~what a b =
  if not (Nat.equal a b) then (
    Printf.eprintf "FAIL: ctx %s disagrees with naive Modarith\n" what;
    exit 1)

let bench_modulus ~pow_reps ~mul_reps rng ~bits ~odd =
  let parity = if odd then "odd" else "even" in
  let m = random_modulus rng ~bits ~odd in
  let a = Nat.random_below rng m and b = Nat.random_below rng m in
  let e = Nat.random_below rng m in
  let c = Modarith.ctx m in
  check ~what:"pow" (Modarith.ctx_pow c a e) (Modarith.pow a e m);
  check ~what:"mul" (Modarith.ctx_mul c a b) (Modarith.mul a b m);
  let rows =
    [ { bits; parity; op = "pow"; reps = pow_reps;
        naive_us = time_us pow_reps (fun () -> Modarith.pow a e m);
        ctx_us = time_us pow_reps (fun () -> Modarith.ctx_pow c a e);
        speedup = 0. };
      { bits; parity; op = "mul"; reps = mul_reps;
        naive_us = time_us_best mul_reps (fun () -> Modarith.mul a b m);
        ctx_us = time_us_best mul_reps (fun () -> Modarith.ctx_mul c a b);
        speedup = 0. }
    ]
  in
  List.map (fun r -> { r with speedup = r.naive_us /. r.ctx_us }) rows

let json_of_row r =
  Printf.sprintf
    "    {\"bits\": %d, \"parity\": \"%s\", \"op\": \"%s\", \"reps\": %d, \"naive_us\": %.2f, \"ctx_us\": %.2f, \"speedup\": %.2f}"
    r.bits r.parity r.op r.reps r.naive_us r.ctx_us r.speedup

let () =
  let smoke = ref false and out = ref "BENCH_modarith.json" in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest -> smoke := true; parse rest
    | "-o" :: path :: rest -> out := path; parse rest
    | arg :: _ -> Printf.eprintf "unknown argument %s\n" arg; exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  (* mul reps stay high even in smoke mode: a single product is well under
     a microsecond at these sizes, so 50 reps is a ~20 us window — pure
     timer noise against the parity floor below. 2000 reps still costs
     only milliseconds. *)
  let sizes, pow_reps_of, mul_reps =
    if !smoke then ([ 96; 192 ], (fun _ -> 2), 2000)
    else ([ 256; 512; 1024; 2048 ], (fun bits -> max 3 (20480 / bits)), 2000)
  in
  let rng = Rng.create 0x6d0d in
  let rows =
    List.concat_map
      (fun bits ->
        let pow_reps = pow_reps_of bits in
        bench_modulus ~pow_reps ~mul_reps rng ~bits ~odd:true
        @ bench_modulus ~pow_reps ~mul_reps rng ~bits ~odd:false)
      sizes
  in
  (* ctx_mul now shares the one-shot multiply-and-divide path with naive
     Modarith (the Barrett route measured 0.57-0.82x here and is kept for
     pow chains only), so mul rows must sit at parity: >= 1.0 up to timer
     noise plus the context's reduce pre-checks, which at 256 bits are a
     few percent of a sub-microsecond multiply. The margin is looser at
     the smoke sizes (96/192 bits, below any protocol prime), where the
     pre-checks are a double-digit share of a ~0.35 us product. *)
  let mul_floor = if !smoke then 0.7 else 0.85 in
  List.iter
    (fun r ->
      if r.op = "mul" && r.speedup < mul_floor then (
        Printf.eprintf "FAIL: ctx mul at %d bits is %.2fx naive (floor %.2f)\n" r.bits r.speedup
          mul_floor;
        exit 1))
    rows;
  Printf.printf "%6s %6s %5s | %12s %12s | %8s\n" "bits" "parity" "op" "naive (us)" "ctx (us)" "speedup";
  List.iter
    (fun r ->
      Printf.printf "%6d %6s %5s | %12.2f %12.2f | %7.2fx\n" r.bits r.parity r.op r.naive_us
        r.ctx_us r.speedup)
    rows;
  let oc = open_out !out in
  Printf.fprintf oc "{\n  \"schema_version\": 1,\n  \"mode\": \"%s\",\n  \"results\": [\n%s\n  ]\n}\n"
    (if !smoke then "smoke" else "full")
    (String.concat ",\n" (List.map json_of_row rows));
  close_out oc;
  Printf.printf "\nwrote %s\n" !out
