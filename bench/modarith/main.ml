(* Microbenchmark for the modular-arithmetic kernel: naive Modarith (long
   division everywhere) versus the precomputed contexts (Montgomery for odd
   moduli, Barrett for even) across modulus sizes bracketing what the
   protocols draw — plus a live comparison against the frozen 26-bit
   kernels in Radix26, so the wide-limb engine's speedup is re-measured
   against the pre-migration baseline on every run instead of trusting a
   stale committed number.

   Full run:   dune exec bench/modarith/main.exe        (writes BENCH_modarith.json)
   Smoke run:  dune exec bench/modarith/main.exe -- --smoke
               (tiny sizes and budgets; wired into @runtest-fast)

   Every timed pair is also cross-checked for equality, so the benchmark
   doubles as an end-to-end oracle test at sizes the unit tests skip —
   including the Radix26 legacy path, whose results must round-trip to the
   same values. *)

module Nat = Ids_bignum.Nat
module Modarith = Ids_bignum.Modarith
module Rng = Ids_bignum.Rng
module Radix26 = Ids_bignum.Radix26

type row = {
  bits : int;
  parity : string;
  op : string;
  reps : int;
  naive_us : float;
  ctx_us : float;
  speedup : float;
  legacy_us : float option; (* frozen 26-bit kernel, timed live *)
  vs_legacy : float option; (* legacy_us / ctx_us *)
}

let time_us reps f =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    ignore (Sys.opaque_identity (f ()))
  done;
  (Unix.gettimeofday () -. t0) *. 1e6 /. float_of_int reps

(* Best of three: a timing window is milliseconds, so a single major-GC
   slice or scheduler blip can skew one side by tens of percent — enough
   to trip the 4x pow floor below on a run-to-run fluke. The minimum is
   the standard microbenchmark answer; every timed column uses it. *)
let time_us_best reps f = min (time_us reps f) (min (time_us reps f) (time_us reps f))

let random_modulus rng ~bits ~odd =
  let top = Nat.shift_left Nat.one (bits - 1) in
  let m = Nat.add top (Nat.random_below rng top) in
  let m = if Nat.equal (Nat.rem m (Nat.of_int 2)) Nat.one = odd then m else Nat.add m Nat.one in
  (* keep the requested bit length after the parity nudge *)
  if Nat.bit_length m = bits then m else Nat.sub m (Nat.of_int 2)

let check ~what a b =
  if not (Nat.equal a b) then (
    Printf.eprintf "FAIL: ctx %s disagrees with naive Modarith\n" what;
    exit 1)

let bench_modulus ~pow_reps ~mul_reps rng ~bits ~odd =
  let parity = if odd then "odd" else "even" in
  let m = random_modulus rng ~bits ~odd in
  let a = Nat.random_below rng m and b = Nat.random_below rng m in
  let e = Nat.random_below rng m in
  let c = Modarith.ctx m in
  check ~what:"pow" (Modarith.ctx_pow c a e) (Modarith.pow a e m);
  check ~what:"mul" (Modarith.ctx_mul c a b) (Modarith.mul a b m);
  let m26 = Radix26.of_nat m in
  let a26 = Radix26.of_nat a and b26 = Radix26.of_nat b and e26 = Radix26.of_nat e in
  (* Legacy modular pow needs an odd modulus (26-bit Montgomery); legacy
     modular mul is mul-then-rem at any parity. *)
  let legacy_pow =
    if odd then begin
      let t26 = Radix26.mont m26 in
      check ~what:"legacy pow" (Radix26.to_nat (Radix26.mont_pow t26 a26 e26)) (Modarith.pow a e m);
      Some (fun () -> Radix26.mont_pow t26 a26 e26)
    end
    else None
  in
  check ~what:"legacy mul" (Radix26.to_nat (Radix26.rem (Radix26.mul a26 b26) m26)) (Modarith.mul a b m);
  let legacy_mul () = Radix26.rem (Radix26.mul a26 b26) m26 in
  let finish r =
    let vs_legacy = Option.map (fun l -> l /. r.ctx_us) r.legacy_us in
    { r with speedup = r.naive_us /. r.ctx_us; vs_legacy }
  in
  List.map finish
    [ { bits; parity; op = "pow"; reps = pow_reps;
        naive_us = time_us_best pow_reps (fun () -> Modarith.pow a e m);
        ctx_us = time_us_best pow_reps (fun () -> Modarith.ctx_pow c a e);
        speedup = 0.;
        legacy_us = Option.map (fun f -> time_us_best pow_reps f) legacy_pow;
        vs_legacy = None };
      { bits; parity; op = "mul"; reps = mul_reps;
        naive_us = time_us_best mul_reps (fun () -> Modarith.mul a b m);
        ctx_us = time_us_best mul_reps (fun () -> Modarith.ctx_mul c a b);
        speedup = 0.;
        legacy_us = Some (time_us_best mul_reps legacy_mul);
        vs_legacy = None }
    ]

(* Toom-range products: both operands past the 512-limb tier switch, where
   mul runs Toom-3 over Karatsuba over the C kernel. The naive column is
   the pure digit-radix schoolbook oracle, the legacy column the frozen
   26-bit Karatsuba stack. *)
let bench_toom rng ~limbs ~reps =
  let bits = limbs * Nat.base_bits in
  let top = Nat.shift_left Nat.one (bits - 1) in
  let a = Nat.add top (Nat.random_below rng top) in
  let b = Nat.add top (Nat.random_below rng top) in
  let a26 = Radix26.of_nat a and b26 = Radix26.of_nat b in
  check ~what:"toom mul" (Nat.mul a b) (Nat.mul_schoolbook a b);
  check ~what:"toom sqr" (Nat.sqr a) (Nat.mul_schoolbook a a);
  check ~what:"legacy toom mul" (Radix26.to_nat (Radix26.mul a26 b26)) (Nat.mul a b);
  let finish r =
    let vs_legacy = Option.map (fun l -> l /. r.ctx_us) r.legacy_us in
    { r with speedup = r.naive_us /. r.ctx_us; vs_legacy }
  in
  List.map finish
    [ { bits; parity = "-"; op = "toom_mul"; reps;
        naive_us = time_us_best reps (fun () -> Nat.mul_schoolbook a b);
        ctx_us = time_us_best reps (fun () -> Nat.mul a b);
        speedup = 0.;
        legacy_us = Some (time_us_best reps (fun () -> Radix26.mul a26 b26));
        vs_legacy = None };
      { bits; parity = "-"; op = "toom_sqr"; reps;
        naive_us = time_us_best reps (fun () -> Nat.mul_schoolbook a a);
        ctx_us = time_us_best reps (fun () -> Nat.sqr a);
        speedup = 0.;
        legacy_us = Some (time_us_best reps (fun () -> Radix26.mul a26 a26));
        vs_legacy = None }
    ]

let json_of_row r =
  let legacy =
    match (r.legacy_us, r.vs_legacy) with
    | Some l, Some v -> Printf.sprintf ", \"legacy_us\": %.2f, \"vs_legacy\": %.2f" l v
    | _ -> ""
  in
  Printf.sprintf
    "    {\"bits\": %d, \"parity\": \"%s\", \"op\": \"%s\", \"reps\": %d, \"naive_us\": %.2f, \"ctx_us\": %.2f, \"speedup\": %.2f%s}"
    r.bits r.parity r.op r.reps r.naive_us r.ctx_us r.speedup legacy

let () =
  let smoke = ref false and out = ref "BENCH_modarith.json" in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest -> smoke := true; parse rest
    | "-o" :: path :: rest -> out := path; parse rest
    | arg :: _ -> Printf.eprintf "unknown argument %s\n" arg; exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  (* mul reps stay high even in smoke mode: a single product is well under
     a microsecond at these sizes, so 50 reps is a ~20 us window — pure
     timer noise against the parity floor below. 2000 reps still costs
     only milliseconds. *)
  let sizes, pow_reps_of, mul_reps =
    if !smoke then ([ 96; 192 ], (fun _ -> 2), 2000)
    else ([ 256; 512; 1024; 2048 ], (fun bits -> max 3 (20480 / bits)), 2000)
  in
  let rng = Rng.create 0x6d0d in
  let rows =
    List.concat_map
      (fun bits ->
        let pow_reps = pow_reps_of bits in
        bench_modulus ~pow_reps ~mul_reps rng ~bits ~odd:true
        @ bench_modulus ~pow_reps ~mul_reps rng ~bits ~odd:false)
      sizes
  in
  (* Toom rows only in full mode: the schoolbook oracle at these sizes is
     tens of milliseconds per product, too slow for @runtest-fast. *)
  let rows =
    if !smoke then rows
    else rows @ bench_toom rng ~limbs:800 ~reps:3 @ bench_toom rng ~limbs:1600 ~reps:3
  in
  (* ctx_mul now shares the one-shot multiply-and-divide path with naive
     Modarith (the Barrett route measured 0.57-0.82x here and is kept for
     pow chains only), so mul rows must sit at parity: >= 1.0 up to timer
     noise plus the context's reduce pre-checks, which at 256 bits are a
     few percent of a sub-microsecond multiply. The margin is looser at
     the smoke sizes (96/192 bits, below any protocol prime), where the
     pre-checks are a double-digit share of a ~0.35 us product. *)
  let mul_floor = if !smoke then 0.7 else 0.85 in
  List.iter
    (fun r ->
      if r.op = "mul" && r.speedup < mul_floor then (
        Printf.eprintf "FAIL: ctx mul at %d bits is %.2fx naive (floor %.2f)\n" r.bits r.speedup
          mul_floor;
        exit 1))
    rows;
  (* Wide-limb regression floors against the live 26-bit baseline. The
     migration's contract: windowed pow at protocol sizes (>= 512 bits)
     gained >= 4x, modular mul never regressed. Smoke sizes are one or two
     62-bit limbs where fixed per-call costs dominate, so only a loose
     no-collapse floor applies there. *)
  let pow_floor bits = if !smoke then 1.0 else if bits >= 512 then 4.0 else 2.0 in
  (* Smoke-size modular mul is two 62-bit limbs against four 26-bit ones:
     the work is nanoseconds either way and the ctx pre-checks tip the
     scales, so only a collapse (not a shortfall) should fail the run. *)
  let legacy_mul_floor = if !smoke then 0.5 else 1.0 in
  List.iter
    (fun r ->
      match r.vs_legacy with
      | None -> ()
      | Some v ->
        let floor =
          match r.op with
          | "pow" -> pow_floor r.bits
          | "mul" -> legacy_mul_floor
          | _ -> 2.0 (* toom rows: well past both crossovers *)
        in
        if v < floor then (
          Printf.eprintf "FAIL: %s at %d bits is %.2fx the 26-bit baseline (floor %.2f)\n"
            r.op r.bits v floor;
          exit 1))
    rows;
  Printf.printf "%6s %6s %8s | %12s %12s %12s | %8s %9s\n" "bits" "parity" "op" "naive (us)"
    "ctx (us)" "legacy (us)" "speedup" "vs_legacy";
  List.iter
    (fun r ->
      let legacy_s = match r.legacy_us with Some l -> Printf.sprintf "%12.2f" l | None -> "           -" in
      let vs_s = match r.vs_legacy with Some v -> Printf.sprintf "%8.2fx" v | None -> "        -" in
      Printf.printf "%6d %6s %8s | %12.2f %12.2f %s | %7.2fx %s\n" r.bits r.parity r.op
        r.naive_us r.ctx_us legacy_s r.speedup vs_s)
    rows;
  let oc = open_out !out in
  Printf.fprintf oc "{\n  \"schema_version\": 2,\n  \"mode\": \"%s\",\n  \"results\": [\n%s\n  ]\n}\n"
    (if !smoke then "smoke" else "full")
    (String.concat ",\n" (List.map json_of_row rows));
  close_out oc;
  Printf.printf "\nwrote %s\n" !out
