(* E20: the service telemetry plane under chaos.

   Boots the ids_serve daemon with telemetry and tracing on and pins the
   three guarantees the observability layer makes:

   - phase A (ledger exactness + trace stitching): a chaos workload over
     the catalog (4 workers, seeded kills). Every response must carry a
     telemetry frame; the server-folded ledger's net-bit counters must
     equal the in-process oracle's per-request deltas summed over completed
     requests EXACTLY — crashes lose whole deltas, which are counted, never
     smeared into the aggregate. After drain, the merged Chrome trace must
     stitch server spans (queue-wait, request) and worker compute spans
     from at least two pids under shared trace ids, with worker spans
     nested inside their request window on the shared clock.
   - phase B (enabled-path overhead, full mode only): the same workload
     with telemetry off vs on; the throughput cost of shipping frames must
     stay under 3%.
   - phase C (torn frame): a request forced to die mid-response-write
     (torn_attempt=1) must surface as a retry that completes bit-identically
     plus one counted lost delta — the torn half-line must never reach a
     parser.

   Records are compared net of their embedded metrics window: memo.*
   counters depend on process cache warmth, so a worker's 2nd execution of
   a catalog entry legitimately differs there while staying bit-identical
   everywhere else. The net.* counters are warmth-independent, which is
   what makes the exactness pin possible.

   Full run:   dune exec bench/telemetry/main.exe   (writes BENCH_telemetry.json)
   Smoke run:  dune exec bench/telemetry/main.exe -- --smoke   (@runtest-fast) *)

module Server = Ids_serve.Server
module Client = Ids_serve.Client
module Request = Ids_serve.Request
module Catalog = Ids_serve.Catalog
module Chaos = Ids_serve.Chaos
module Supervisor = Ids_serve.Supervisor
module Runlog = Ids_engine.Runlog
module Fault = Ids_network.Fault
module Obs = Ids_obs.Obs
module Trace = Ids_obs.Trace
module Json = Ids_obs.Json

(* Daemons forked by the running phase: a failing assertion must kill them,
   or the orphans keep the bench's stdout pipe open and hang the harness. *)
let daemons : int list ref = ref []

let fail fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("bench/telemetry FAILED: " ^ m);
      List.iter (fun pid -> try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()) !daemons;
      exit 1)
    fmt

let now () = Unix.gettimeofday ()

(* --- the instrumented in-process oracle ------------------------------------------- *)

(* Per catalog key: the expected record and the exact net.* counter deltas
   one execution contributes (measured with the same checkpoint/since
   window the worker uses, so the exactness pin is apples to apples). *)
let oracle : (string, string * (string * int) list) Hashtbl.t = Hashtbl.create 32

let expected ~protocol ~strategy ~trials ~fault =
  let key = Printf.sprintf "%s/%s/%d/%s" protocol strategy trials (Fault.to_string fault) in
  match Hashtbl.find_opt oracle key with
  | Some v -> v
  | None ->
    Obs.set_enabled true;
    let cp = Obs.checkpoint () in
    let r =
      match Catalog.execute_request ~protocol ~strategy ~trials ~fault with
      | Ok r -> r
      | Error e -> fail "oracle cannot execute %s: %s" key e
    in
    let d = Obs.since cp in
    let nets =
      List.filter_map
        (fun (c : Obs.counter_snapshot) ->
          if String.length c.Obs.cname >= 4 && String.sub c.Obs.cname 0 4 = "net." then
            Some (c.Obs.cname, c.Obs.total)
          else None)
        d.Obs.counters
    in
    Hashtbl.add oracle key (r, nets);
    (r, nets)

(* Strip the embedded metrics window before comparing records: both sides
   must parse, and everything except the metrics object must agree. *)
let net_of_metrics label line =
  match Runlog.of_line line with
  | Ok r -> { r with Runlog.metrics = None }
  | Error e -> fail "%s record does not parse: %s" label e

(* --- daemon lifecycle ------------------------------------------------------------- *)

let start_daemon cfg =
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 -> (
    match Server.run cfg with
    | Ok () -> Unix._exit 0
    | Error e ->
      Printf.eprintf "daemon: %s\n%!" e;
      Unix._exit 1)
  | pid ->
    daemons := pid :: !daemons;
    pid

let stop_daemon pid =
  daemons := List.filter (fun p -> p <> pid) !daemons;
  Unix.kill pid Sys.sigterm;
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED c -> fail "daemon exited %d after SIGTERM (expected a clean drain)" c
  | _, (Unix.WSIGNALED s | Unix.WSTOPPED s) -> fail "daemon killed/stopped by signal %d" s

(* --- pipelined driver ------------------------------------------------------------- *)

type served = { sreq : Request.t; sresp : Request.response }

let drive client reqs ~window =
  let n = Array.length reqs in
  let by_id = Hashtbl.create n in
  Array.iter (fun (r : Request.t) -> Hashtbl.replace by_id r.Request.id r) reqs;
  let out = ref [] in
  let sent = ref 0 and received = ref 0 in
  while !received < n do
    while !sent < n && !sent - !received < window do
      (match Client.send client reqs.(!sent) with
      | Ok () -> ()
      | Error e -> fail "send %s: %s" reqs.(!sent).Request.id e);
      incr sent
    done;
    match Client.recv client with
    | Error e -> fail "recv: %s" e
    | Ok resp ->
      let id = Request.response_id resp in
      let sreq =
        match Hashtbl.find_opt by_id id with
        | Some r -> r
        | None -> fail "response for unknown id %S" id
      in
      out := { sreq; sresp = resp } :: !out;
      incr received
  done;
  List.rev !out

let build_requests ~count ~forced_every ~trials_for =
  let entries = Array.of_list (Catalog.entries ()) in
  Array.init count (fun i ->
      let e = entries.(i mod Array.length entries) in
      let fault = if i mod 7 = 3 then Fault.drop_only 0.1 else Fault.none in
      let kill_attempt = if forced_every > 0 && i mod forced_every = 0 then Some 1 else None in
      Request.make_estimate ?kill_attempt ~fault ~id:(Printf.sprintf "t%04d" i)
        ~protocol:e.Catalog.protocol ~strategy:e.Catalog.strategy
        ~trials:(trials_for e.Catalog.protocol) ())

(* --- telemetry endpoint ----------------------------------------------------------- *)

let fetch_telemetry client =
  match
    Client.request client
      { Request.id = "stats"; op = Request.Stats Request.Json_full; trace = None }
  with
  | Ok (Request.Stats_reply { stats; body = Some b; _ }) -> (
    match Json.parse b with
    | Ok j -> (stats, j)
    | Error e -> fail "telemetry body does not parse: %s" e)
  | Ok (Request.Stats_reply { body = None; _ }) -> fail "stats format=json returned no body"
  | Ok _ -> fail "stats: wrong response shape"
  | Error e -> fail "stats: %s" e

let jget j path = List.fold_left (fun acc k -> Option.bind acc (Json.member k)) (Some j) path

let jint j path =
  match Option.bind (jget j path) Json.to_int with
  | Some v -> v
  | None -> fail "telemetry json lacks int %s" (String.concat "." path)

let ledger_of j =
  match jget j [ "ledger" ] with
  | None -> fail "telemetry json lacks the ledger"
  | Some l -> (
    match Obs.snapshot_of_json l with
    | Ok s -> s
    | Error e -> fail "ledger snapshot does not decode: %s" e)

(* --- phase A: ledger exactness + trace stitching ---------------------------------- *)

type phase_a = {
  sent : int;
  retried_reqs : int;
  forced : int;
  wall_s : float;
  crashes : int;
  lost_deltas : int;
  frames : int;
  net_totals : (string * int) list;
  trace_pids : int;
  trace_events : int;
}

let phase_a ~mode ~socket ~trace_path ~chaos ~count ~forced_every ~window ~trials_for =
  let cfg =
    { Server.default with
      Server.socket;
      log_path = "";
      chaos;
      telemetry = true;
      trace_path;
      sup = { Supervisor.default with Supervisor.workers = 4; queue_bound = 256 }
    }
  in
  let reqs = build_requests ~count ~forced_every ~trials_for in
  let pid = start_daemon cfg in
  let client =
    match Client.connect ~wait:10. socket with
    | Ok c -> c
    | Error e -> fail "connect: %s" e
  in
  let t_start = now () in
  let served = drive client reqs ~window in
  let wall_s = now () -. t_start in
  (* Every request completed, net-of-metrics bit-identical, frame attached. *)
  let retried_reqs = ref 0 and forced = ref 0 in
  let expected_nets : (string, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun { sreq; sresp } ->
      match (sreq.Request.op, sresp) with
      | ( Request.Estimate { protocol; strategy; trials; fault; kill_attempt; _ },
          Request.Estimated { attempts; record; telemetry; _ } ) ->
        let want, nets = expected ~protocol ~strategy ~trials ~fault in
        if net_of_metrics "served" record <> net_of_metrics "oracle" want then
          fail "%s: served record differs from the oracle net of metrics" sreq.Request.id;
        (* Satellite: the worker-produced record embeds its metrics window. *)
        (match (net_of_metrics "served" record).Runlog.version, (Runlog.of_line record) with
        | 3, Ok { Runlog.metrics = None; _ } ->
          fail "%s: telemetry worker record lacks the embedded metrics window" sreq.Request.id
        | _ -> ());
        List.iter
          (fun (name, v) ->
            Hashtbl.replace expected_nets name
              (v + Option.value (Hashtbl.find_opt expected_nets name) ~default:0))
          nets;
        let frame =
          match telemetry with
          | Some f -> f
          | None -> fail "%s: response carries no telemetry frame" sreq.Request.id
        in
        if frame.Request.fpid <= 0 then fail "%s: frame has no pid" sreq.Request.id;
        if frame.Request.fseq <= 0 then fail "%s: frame has no seq" sreq.Request.id;
        if attempts > 1 then incr retried_reqs;
        (match kill_attempt with
        | Some _ ->
          incr forced;
          if attempts < 2 then fail "%s: forced kill but attempts=%d" sreq.Request.id attempts
        | None -> ())
      | _, Request.Rejected _ -> fail "%s: rejected — chaos must be absorbed" sreq.Request.id
      | _ -> fail "%s: unexpected response shape" sreq.Request.id)
    served;
  (* The exactness pin: the server-folded ledger's net counters equal the
     oracle sums to the bit.  Lost deltas are counted, never folded. *)
  let stats, telem = fetch_telemetry client in
  let stat name =
    match List.assoc_opt name stats with Some v -> v | None -> fail "stats lack %S" name
  in
  if stat "completed" <> count then fail "completed %d of %d" (stat "completed") count;
  let ledger = ledger_of telem in
  let net_totals =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) expected_nets [] |> List.sort compare
  in
  List.iter
    (fun (name, want) ->
      let got = Obs.counter_total ledger name in
      if got <> want then
        fail "ledger %s = %d, oracle sum = %d (must be exact)" name got want)
    net_totals;
  if net_totals = [] then fail "oracle saw no net.* counters (instrumentation dead?)";
  let lost = jint telem [ "lost_deltas" ] in
  let crashes = stat "worker_crashes" in
  (* Chaos kills fire while a request is assigned, so every crash is
     exactly one counted lost delta here. *)
  if lost <> crashes then fail "lost_deltas %d <> worker_crashes %d" lost crashes;
  let frames = jint telem [ "frames" ] in
  if frames < count then fail "only %d frames for %d completed requests" frames count;
  Client.close client;
  stop_daemon pid;
  (* The merged trace: spans from server and workers, stitched per trace id,
     worker compute nested inside its request window on the shared clock. *)
  let evs =
    match Trace.events_of_file trace_path with
    | Ok evs -> evs
    | Error e -> fail "merged trace unreadable: %s" e
  in
  let pids = List.sort_uniq compare (List.map (fun (e : Trace.ev) -> e.Trace.epid) evs) in
  if List.length pids < 2 then
    fail "merged trace has spans from %d pid(s); want server + worker" (List.length pids);
  let tid_of (e : Trace.ev) = List.assoc_opt "trace_id" e.Trace.eargs in
  let requests_ev = List.filter (fun (e : Trace.ev) -> e.Trace.ename = "serve.request") evs in
  let workers_ev = List.filter (fun (e : Trace.ev) -> e.Trace.ename = "worker.execute") evs in
  if List.length requests_ev < count then
    fail "trace has %d serve.request spans for %d requests" (List.length requests_ev) count;
  if workers_ev = [] then fail "trace has no worker.execute spans";
  let slack_ns = 1_000 in
  let stitched = ref 0 in
  List.iter
    (fun (w : Trace.ev) ->
      match tid_of w with
      | None -> fail "worker.execute span carries no trace_id"
      | Some tid -> (
        match List.find_opt (fun r -> tid_of r = Some tid) requests_ev with
        | None -> fail "worker span's trace_id %S has no serve.request span" tid
        | Some r ->
          if w.Trace.epid = r.Trace.epid then fail "worker span recorded by the server pid";
          if
            w.Trace.ets_ns < r.Trace.ets_ns - slack_ns
            || w.Trace.ets_ns + w.Trace.edur_ns > r.Trace.ets_ns + r.Trace.edur_ns + slack_ns
          then
            fail "worker span [%d,+%d] outside its request window [%d,+%d] (trace %S)"
              w.Trace.ets_ns w.Trace.edur_ns r.Trace.ets_ns r.Trace.edur_ns tid;
          incr stitched))
    workers_ev;
  Printf.printf
    "phase A (%s): %d requests in %.2fs, %d retried (forced %d), crashes %d = lost deltas %d, %d frames, %d trace events from %d pids (%d worker spans stitched)\n%!"
    mode count wall_s !retried_reqs !forced crashes lost frames (List.length evs)
    (List.length pids) !stitched;
  { sent = count;
    retried_reqs = !retried_reqs;
    forced = !forced;
    wall_s;
    crashes;
    lost_deltas = lost;
    frames;
    net_totals;
    trace_pids = List.length pids;
    trace_events = List.length evs
  }

(* --- phase B: enabled-path overhead ----------------------------------------------- *)

let timed_run ~socket ~telemetry ~count ~window ~trials_for =
  let cfg =
    { Server.default with
      Server.socket;
      log_path = "";
      chaos = Chaos.none;
      telemetry;
      sup = { Supervisor.default with Supervisor.workers = 4; queue_bound = 256 }
    }
  in
  let reqs = build_requests ~count ~forced_every:0 ~trials_for in
  let pid = start_daemon cfg in
  let client =
    match Client.connect ~wait:10. socket with
    | Ok c -> c
    | Error e -> fail "connect: %s" e
  in
  let t0 = now () in
  let served = drive client reqs ~window in
  let wall = now () -. t0 in
  if List.length served <> count then fail "overhead run served %d of %d" (List.length served) count;
  Client.close client;
  stop_daemon pid;
  wall

(* Interleaved best-of pairs: wall-clock ratios are noisy, so take the best
   of [rounds] paired measurements and retry the verdict against the cap. *)
let phase_b ~socket ~count ~window ~trials_for ~cap_pct =
  let best_off = ref infinity and best_on = ref infinity in
  let rounds = 3 in
  for _ = 1 to rounds do
    best_off := Float.min !best_off (timed_run ~socket ~telemetry:false ~count ~window ~trials_for);
    best_on := Float.min !best_on (timed_run ~socket ~telemetry:true ~count ~window ~trials_for)
  done;
  let pct = ((!best_on /. !best_off) -. 1.) *. 100. in
  Printf.printf "phase B: telemetry off %.3fs, on %.3fs -> overhead %.2f%% (cap %.0f%%)\n%!"
    !best_off !best_on pct cap_pct;
  if pct >= cap_pct then
    fail "telemetry enabled-path overhead %.2f%% >= %.0f%% cap" pct cap_pct;
  (float_of_int count /. !best_off, float_of_int count /. !best_on, pct)

(* --- phase C: torn response frame ------------------------------------------------- *)

let phase_c ~socket =
  let cfg =
    { Server.default with
      Server.socket;
      log_path = "";
      chaos = Chaos.none;
      telemetry = true;
      sup = { Supervisor.default with Supervisor.workers = 2; queue_bound = 8 }
    }
  in
  let pid = start_daemon cfg in
  let client =
    match Client.connect ~wait:10. socket with
    | Ok c -> c
    | Error e -> fail "connect: %s" e
  in
  (* The worker computes, writes half its response line, and SIGKILLs
     itself.  The daemon must treat the torn frame as a whole-line loss:
     retry on a fresh worker, count one lost delta, and never let the
     half-line near a parser. *)
  let req =
    Request.make_estimate ~torn_attempt:1 ~id:"torn1" ~protocol:"sym_dmam" ~strategy:"honest"
      ~trials:3 ()
  in
  (match Client.request client req with
  | Ok (Request.Estimated { attempts; record; telemetry; _ }) ->
    if attempts <> 2 then fail "torn frame: attempts=%d, want 2 (one retry)" attempts;
    let want, _ = expected ~protocol:"sym_dmam" ~strategy:"honest" ~trials:3 ~fault:Fault.none in
    if net_of_metrics "torn retry" record <> net_of_metrics "oracle" want then
      fail "torn frame: retried record differs from the oracle";
    (match telemetry with
    | Some f ->
      if f.Request.fseq <> 1 then
        fail "torn frame: retry frame seq=%d, want 1 (fresh worker chain)" f.Request.fseq
    | None -> fail "torn frame: retry carries no telemetry frame")
  | Ok (Request.Rejected _) -> fail "torn frame: request rejected instead of retried"
  | Ok _ -> fail "torn frame: unexpected response shape"
  | Error e -> fail "torn frame: %s" e);
  let _, telem = fetch_telemetry client in
  let lost = jint telem [ "lost_deltas" ] in
  if lost <> 1 then fail "torn frame: lost_deltas=%d, want exactly 1" lost;
  Client.close client;
  stop_daemon pid;
  Printf.printf "phase C: torn response frame -> 1 counted lost delta, clean retry, no parse error\n%!";
  lost

(* --- report ----------------------------------------------------------------------- *)

let write_report ~out ~mode (a : phase_a) ~overhead ~torn_lost =
  let baseline_rps, telemetry_rps, overhead_pct = overhead in
  let oc = open_out out in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema_version\": 1,\n";
  p "  \"mode\": %S,\n" mode;
  p "  \"chaos\": {\"kill_rate\": 0.1, \"seed\": 7, \"forced_kills\": %d},\n" a.forced;
  p "  \"requests\": {\"sent\": %d, \"completed\": %d, \"retried\": %d, \"failed\": 0},\n" a.sent
    a.sent a.retried_reqs;
  p "  \"ledger_exact\": true,\n";
  p "  \"lost_deltas\": %d,\n" a.lost_deltas;
  p "  \"frames\": %d,\n" a.frames;
  p "  \"counters\": {%s},\n"
    (String.concat ", "
       (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %d" k v) a.net_totals));
  p "  \"trace\": {\"pids\": %d, \"events\": %d, \"stitched\": true},\n" a.trace_pids
    a.trace_events;
  p "  \"overhead\": {\"baseline_rps\": %.2f, \"telemetry_rps\": %.2f, \"overhead_pct\": %.2f},\n"
    baseline_rps telemetry_rps overhead_pct;
  p "  \"torn\": {\"attempts\": 2, \"lost_deltas\": %d, \"parse_errors\": 0}\n" torn_lost;
  p "}\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" out

(* --- main ------------------------------------------------------------------------- *)

let () =
  let smoke = ref false and out = ref "BENCH_telemetry.json" in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
      smoke := true;
      parse rest
    | ("-o" | "--out") :: path :: rest ->
      out := path;
      parse rest
    | arg :: _ -> fail "unknown argument %S" arg
  in
  parse (List.tl (Array.to_list Sys.argv));
  let socket = Printf.sprintf "ids_telem_%d.sock" (Unix.getpid ()) in
  let trace_path = Printf.sprintf "ids_telem_%d_trace.json" (Unix.getpid ()) in
  let cleanup () =
    List.iter (fun f -> if Sys.file_exists f then Sys.remove f) [ socket; trace_path ]
  in
  Fun.protect ~finally:cleanup (fun () ->
      if !smoke then begin
        let a =
          phase_a ~mode:"smoke" ~socket ~trace_path ~chaos:Chaos.none ~count:4 ~forced_every:3
            ~window:4 ~trials_for:(fun _ -> 3)
        in
        ignore (phase_c ~socket);
        if a.lost_deltas < a.forced then fail "forced kills not counted as lost deltas";
        print_endline "bench/telemetry smoke: OK"
      end
      else begin
        let trials_for = function "sym_dam" -> 4 | "gni" -> 8 | _ -> 16 in
        let a =
          phase_a ~mode:"full" ~socket ~trace_path ~chaos:(Chaos.make ~kill:0.1 ~seed:7 ())
            ~count:40 ~forced_every:10 ~window:8 ~trials_for
        in
        let overhead = phase_b ~socket ~count:40 ~window:8 ~trials_for ~cap_pct:3. in
        let torn_lost = phase_c ~socket in
        write_report ~out:!out ~mode:"full" a ~overhead ~torn_lost;
        print_endline "bench/telemetry: OK"
      end)
